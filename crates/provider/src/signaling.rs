//! The PDN signaling server (tracker).
//!
//! This is the "trusted 3rd party" that distinguishes PDN from classic
//! P2P-CDNs (§III-A): it authenticates joins, groups viewers into swarms by
//! the video (and manifest) they watch, introduces neighbors, meters usage
//! for billing — and, in hardened configurations, runs the §V-B
//! peer-assisted integrity checking with conflict resolution and a peer
//! blacklist, and the §V-C geo-constrained peer matching.
//!
//! # Swarm-state engine
//!
//! Server state is held in purpose-built structures rather than generic
//! string-keyed maps (see `DESIGN.md`, "Swarm-state engine"):
//!
//! - video ids, manifest hashes, customer keys, and geo strings are
//!   interned to dense `u32`s ([`pdn_simnet::Interner`]), so swarm lookup
//!   hashes two integers instead of two heap strings;
//! - peers live in a slab (`Vec<Option<PeerSlot>>`) indexed directly by
//!   the sequential, never-reused peer id the wire already exposes, with an
//!   `addr -> peer` index replacing the old linear scans in the stats /
//!   IM-report / leave paths, and a peer → swarm back-pointer replacing the
//!   old remove-from-every-swarm scan;
//! - per-video swarm lists are kept sorted by manifest hash at insertion,
//!   so SIM broadcasts walk them in deterministic order with no per-call
//!   key sort;
//! - IM-report state is bounded (entry, distinct-IM, and reporters-per-IM
//!   caps) so attack-driven reports cannot grow server memory without
//!   bound; evictions are counted in [`DefenseStats::im_evictions`].
//!
//! The pre-refactor implementation is preserved as
//! [`crate::state_baseline::BaselineSignalingServer`] and differential
//! tests pin the two to byte-identical reply streams.

use std::collections::VecDeque;

use pdn_crypto::hmac::{hmac_sha256, hmac_sha256_keyed, HmacKey};
use pdn_media::{OriginServer, SegmentId, VideoId};
use pdn_simnet::{Addr, FxHashMap, FxHashSet, GeoIpService, Interner, SimRng, SimTime};

use crate::auth::{AccountRegistry, AuthError, TokenValidator};
use crate::billing::UsageMeter;
use crate::profiles::{AuthScheme, ProviderProfile};
use crate::proto::SignalMsg;

/// Cap on distinct `(video, rendition, seq)` entries in the IM-report
/// table; beyond it the oldest entry is evicted FIFO.
const MAX_IM_ENTRIES: usize = 65_536;
/// Cap on distinct IM values recorded per segment entry.
const MAX_DISTINCT_IMS: usize = 64;
/// Cap on reporter ids recorded per distinct IM value.
const MAX_REPORTERS_PER_IM: usize = 1_024;

/// How the server picks neighbor candidates (§V-C mitigation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MatchingPolicy {
    /// Introduce any swarm member (the measured default — maximal leak).
    Global,
    /// Only members whose public IP geolocates to the same country.
    SameCountry,
    /// Only members on the same ISP.
    SameIsp,
}

/// A member of a swarm as the server sees it. Country/ISP are interned ids
/// so the matching policy compares integers.
///
/// The SDP is stored as its *encoded wire fragment* ([`bytes::Bytes`]), not
/// a parsed [`pdn_webrtc::SessionDescription`]: a binary join interns a
/// zero-copy slice of the incoming frame, and `JoinOk`/`PeerJoined` replies
/// splice the fragment straight into the outgoing frame
/// ([`crate::wire::encode_join_ok_spliced`]) — the per-neighbor-per-join
/// `SessionDescription` clone the old assembly paid is gone entirely.
#[derive(Debug, Clone)]
struct Member {
    peer_id: u64,
    addr: Addr,
    sdp_wire: bytes::Bytes,
    country: Option<u32>,
    isp: Option<u32>,
}

/// One swarm: members in join order (candidate selection walks them
/// youngest-first). Removal tombstones the slot in place — the position
/// index lives in [`PeerSlot::swarm_pos`], so a leave is O(1) instead of
/// a scan of the whole membership (the old `position()` scan turned
/// high-churn service runs with 100k-member swarms quadratic). Iteration
/// order of live members is join order, exactly as before; the dead share
/// is compacted once it exceeds the live population.
#[derive(Debug, Default)]
struct Swarm {
    members: Vec<Option<Member>>,
    live: u32,
}

/// Slab entry for a live peer. `swarm`/`swarm_pos` are the back-pointers
/// that make removal O(1) instead of O(all swarms) / O(one swarm).
#[derive(Debug)]
struct PeerSlot {
    addr: Addr,
    customer: u32,
    last_seen: SimTime,
    swarm: u32,
    swarm_pos: u32,
}

/// State of integrity metadata for one segment (§V-B). Distinct IMs are
/// few (honest + attacker variants), so they live in a `Vec` in first-seen
/// order — which is also the deterministic iteration order the liar scan
/// needs (the old `HashMap` version had to sort afterwards).
#[derive(Debug, Default)]
struct ImEntry {
    /// (im, reporting peer IDs), in first-report order.
    reports: Vec<([u8; 32], Vec<u64>)>,
    /// Signed authentic IM, once established.
    sim: Option<([u8; 32], [u8; 32])>,
}

/// Counters describing server-side defense activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DefenseStats {
    /// IM conflicts detected.
    pub im_conflicts: u64,
    /// Authoritative CDN refetches performed to resolve conflicts.
    pub cdn_refetches: u64,
    /// Bytes refetched from the CDN (the attacker-inflicted overhead).
    pub cdn_refetch_bytes: u64,
    /// Peers blacklisted for reporting fake IMs.
    pub blacklisted_peers: u64,
    /// SIMs issued.
    pub sims_issued: u64,
    /// IM-report records dropped by the state caps (entry FIFO evictions
    /// plus reports discarded at the distinct-IM / per-IM caps).
    pub im_evictions: u64,
}

/// Batch-local admission memos for draining an arrival burst in one
/// server tick.
///
/// An open-loop tick hands the server a run of `Join` frames that
/// overwhelmingly target the same video/manifest and present the same
/// customer key (a flash crowd is by definition many arrivals to one
/// stream). The batch caches the last swarm resolution and the last
/// *successful* static-key authentication so the burst costs one
/// interner/registry pass instead of one per frame. Purely an
/// accelerator: replies and server state are byte-identical with and
/// without a batch (see `batch_matches_sequential` in the tests).
#[derive(Debug, Default)]
pub struct AdmissionBatch {
    /// (video, manifest_hash) -> swarm slot.
    swarm_memo: Option<(String, String, u32)>,
    /// (api_key, origin) -> customer_id; only `StaticApiKey` / `TenantKey`
    /// successes (token schemes mutate validator state, so they always
    /// take the full path).
    auth_memo: Option<(String, String, String)>,
    /// Rolling neighbor-candidate window for the memoized swarm: one
    /// candidate pass per `(swarm, tick)` feeds every join in the burst.
    /// Only valid under [`MatchingPolicy::Global`] (geo policies make the
    /// candidate set joiner-dependent) and invalidated by any non-join
    /// frame in the burst (a leave or blacklist could mutate membership).
    neighbor_memo: Option<NeighborMemo>,
    /// Memo hits (observability for the service harness).
    hits: u64,
}

/// See [`AdmissionBatch::neighbor_memo`]. Candidates are youngest-first —
/// exactly the order the per-join slab walk produces — so serving a join
/// from the memo, then pushing the joiner on the front, reproduces the
/// sequential walk byte-for-byte.
#[derive(Debug)]
struct NeighborMemo {
    slot: u32,
    cands: VecDeque<(u64, Addr, bytes::Bytes)>,
}

impl AdmissionBatch {
    /// Creates an empty batch scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the memos; call between ticks when reusing the allocation.
    pub fn clear(&mut self) {
        self.swarm_memo = None;
        self.auth_memo = None;
        self.neighbor_memo = None;
    }

    /// Memo hits since construction (across `clear` calls).
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// The PDN signaling server. See the [module docs](self).
pub struct SignalingServer {
    profile: ProviderProfile,
    accounts: AccountRegistry,
    token_validator: Option<TokenValidator>,
    /// Temp tokens (private profiles): token -> optional bound video.
    temp_tokens: FxHashMap<String, Option<VideoId>>,
    /// Private platforms only accept registered video sources (the DRM-ish
    /// gate that blocked the Mango TV pollution test, §IV-C).
    registered_sources: Option<FxHashSet<String>>,
    matching: MatchingPolicy,
    max_neighbors: usize,
    // --- swarm-state engine ---
    /// Video-id strings -> dense u32.
    videos: Interner,
    /// Manifest-hash strings -> dense u32.
    manifests: Interner,
    /// Customer-id strings -> dense u32 (indexes `meters`).
    customers: Interner,
    /// Country/ISP strings -> dense u32 (matching-policy compares).
    geos: Interner,
    /// Swarm slab; slots are never reused (swarms persist for the session).
    swarms: Vec<Swarm>,
    /// (video, manifest) -> swarm slot.
    swarm_index: FxHashMap<(u32, u32), u32>,
    /// video -> swarm slots, sorted by manifest-hash string (the SIM
    /// broadcast order).
    video_swarms: FxHashMap<u32, Vec<u32>>,
    /// Peer slab indexed by `peer_id - 1`; peer ids are sequential and
    /// never reused (they are wire-visible in `JoinOk`).
    peers: Vec<Option<PeerSlot>>,
    live_peers: usize,
    /// Wire address -> peer id (latest join wins).
    addr_index: FxHashMap<Addr, u64>,
    /// Usage meters indexed by interned customer id.
    meters: Vec<UsageMeter>,
    next_peer_id: u64,
    // §V-B defense state
    im_reporters: usize,
    im_state: FxHashMap<(u32, u8, u64), ImEntry>,
    /// FIFO of `im_state` keys for bounded eviction.
    im_order: VecDeque<(u32, u8, u64)>,
    blacklist: FxHashSet<u64>,
    blacklist_addrs: FxHashSet<Addr>,
    sim_key: Vec<u8>,
    /// Precomputed HMAC schedule for `sim_key`; every SIM signature reuses
    /// the cached ipad/opad midstates instead of rehashing the key.
    sim_hmac: HmacKey,
    origin: Option<OriginServer>,
    defense_stats: DefenseStats,
    rng: SimRng,
    /// Reused reply buffer for the frame path (the per-agent scratch
    /// `BytesMut` pattern): no per-frame `Vec<(Addr, SignalMsg)>` alloc.
    reply_scratch: Vec<(Addr, SignalMsg)>,
    /// Reused neighbor-pick buffer for the zero-copy join path.
    neighbor_scratch: Vec<(u64, Addr, bytes::Bytes)>,
    /// Whether binary join frames take the zero-copy borrowed path
    /// (`JoinView` + spliced replies). Disabled only by the A/B bench to
    /// measure the win over the owned `SignalMsg` assembly; replies and
    /// state are byte-identical either way.
    join_fast_path: bool,
}

impl std::fmt::Debug for SignalingServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalingServer")
            .field("provider", &self.profile.name)
            .field("swarms", &self.swarms.len())
            .field("peers", &self.live_peers)
            .finish()
    }
}

impl SignalingServer {
    /// Creates a server for `profile`.
    pub fn new(profile: ProviderProfile, seed: u64) -> Self {
        let token_validator = matches!(profile.auth, AuthScheme::DisposableJwt)
            .then(|| TokenValidator::new(b"pdn-provider-jwt-key".to_vec()));
        SignalingServer {
            profile,
            accounts: AccountRegistry::new(),
            token_validator,
            temp_tokens: FxHashMap::default(),
            registered_sources: None,
            matching: MatchingPolicy::Global,
            max_neighbors: 4,
            videos: Interner::new(),
            manifests: Interner::new(),
            customers: Interner::new(),
            geos: Interner::new(),
            swarms: Vec::new(),
            swarm_index: FxHashMap::default(),
            video_swarms: FxHashMap::default(),
            peers: Vec::new(),
            live_peers: 0,
            addr_index: FxHashMap::default(),
            meters: Vec::new(),
            next_peer_id: 1,
            im_reporters: 3,
            im_state: FxHashMap::default(),
            im_order: VecDeque::new(),
            blacklist: FxHashSet::default(),
            blacklist_addrs: FxHashSet::default(),
            sim_key: b"pdn-server-sim-key".to_vec(),
            sim_hmac: HmacKey::new(b"pdn-server-sim-key"),
            origin: None,
            defense_stats: DefenseStats::default(),
            rng: SimRng::seed(seed ^ 0x51_6e_a1),
            reply_scratch: Vec::new(),
            neighbor_scratch: Vec::new(),
            join_fast_path: true,
        }
    }

    /// Enables/disables the zero-copy borrowed join path (default on).
    /// Only the A/B bench turns it off, to measure the spliced assembly
    /// against the owned `SignalMsg` assembly it replaced.
    pub fn set_join_fast_path(&mut self, enabled: bool) {
        self.join_fast_path = enabled;
    }

    /// The provider profile this server runs.
    pub fn profile(&self) -> &ProviderProfile {
        &self.profile
    }

    /// Customer account registry (register victims and attackers here).
    pub fn accounts_mut(&mut self) -> &mut AccountRegistry {
        &mut self.accounts
    }

    /// Read access to accounts.
    pub fn accounts(&self) -> &AccountRegistry {
        &self.accounts
    }

    /// Sets the neighbor matching policy (§V-C).
    pub fn set_matching(&mut self, policy: MatchingPolicy) {
        self.matching = policy;
    }

    /// Sets the number of IM reporters per segment (§V-B parameter).
    pub fn set_im_reporters(&mut self, k: usize) {
        self.im_reporters = k.max(1);
    }

    /// Sets the maximum neighbors introduced per join.
    pub fn set_max_neighbors(&mut self, n: usize) {
        self.max_neighbors = n;
    }

    /// Gives the server CDN origin access for IM conflict resolution.
    pub fn attach_origin(&mut self, origin: OriginServer) {
        self.origin = Some(origin);
    }

    /// Restricts joins to registered video sources (private platforms).
    pub fn set_registered_sources(&mut self, sources: impl IntoIterator<Item = String>) {
        self.registered_sources = Some(sources.into_iter().collect());
    }

    /// Mints a temporary token (private profiles). Bound to `video` when
    /// the profile says so.
    pub fn mint_temp_token(&mut self, video: Option<VideoId>) -> String {
        let token = format!("tt-{:016x}", self.rng.next_u64());
        let bound = match self.profile.auth {
            AuthScheme::TempToken { video_bound: true } => video,
            _ => None,
        };
        self.temp_tokens.insert(token.clone(), bound);
        token
    }

    /// The JWT signing key (for customer servers minting §V-A tokens).
    pub fn jwt_key(&self) -> &[u8] {
        b"pdn-provider-jwt-key"
    }

    /// Usage meter of a customer (free-riding evidence).
    pub fn meter(&self, customer_id: &str) -> UsageMeter {
        self.customers
            .get(customer_id)
            .and_then(|id| self.meters.get(id as usize).copied())
            .unwrap_or_default()
    }

    /// Defense activity counters.
    pub fn defense_stats(&self) -> DefenseStats {
        self.defense_stats
    }

    /// Whether `peer_id` is blacklisted.
    pub fn is_blacklisted(&self, peer_id: u64) -> bool {
        self.blacklist.contains(&peer_id)
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.live_peers
    }

    /// Iterates wire addresses of live peers in join (peer-id) order —
    /// what the *server* knows; peers individually see only their
    /// neighbors.
    pub fn known_peer_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.peers.iter().flatten().map(|p| p.addr)
    }

    fn meter_mut(&mut self, customer: u32) -> &mut UsageMeter {
        let idx = customer as usize;
        if idx >= self.meters.len() {
            self.meters.resize_with(idx + 1, UsageMeter::default);
        }
        &mut self.meters[idx]
    }

    fn peer(&self, peer_id: u64) -> Option<&PeerSlot> {
        self.peers
            .get(peer_id as usize - 1)
            .and_then(Option::as_ref)
    }

    /// Resolves the live peer that joined from `addr` (latest join wins).
    fn peer_by_addr(&self, addr: Addr) -> Option<u64> {
        self.addr_index.get(&addr).copied()
    }

    /// Decodes one signaling frame, handles it, and encodes the replies
    /// into `out` (appended). This is the world harness's hot path: the
    /// intermediate reply list is a reused per-server scratch, and a
    /// broadcast (e.g. §V-B [`SignalMsg::SimBroadcast`]) fans one identical
    /// message out to the whole swarm, so a reply equal to the previous one
    /// reuses its encoded frame — a refcount bump instead of a
    /// per-recipient re-encode.
    pub fn handle_frame_into(
        &mut self,
        from: Addr,
        frame: &bytes::Bytes,
        now: SimTime,
        geoip: &GeoIpService,
        out: &mut Vec<(Addr, bytes::Bytes)>,
    ) {
        if self.join_fast_path && crate::wire::wire_mode() == crate::wire::WireMode::Binary {
            if let Some(view) = crate::wire::decode_join_view(frame) {
                self.on_join_frame(from, &view, frame, now, geoip, None, out);
                return;
            }
        }
        let Some(msg) = SignalMsg::decode(frame) else {
            return;
        };
        let mut replies = std::mem::take(&mut self.reply_scratch);
        replies.clear();
        self.handle_into(from, msg, now, geoip, &mut replies);
        let mut prev: Option<bytes::Bytes> = None;
        for i in 0..replies.len() {
            let (addr, reply) = &replies[i];
            let encoded = match (&prev, i.checked_sub(1)) {
                (Some(bytes), Some(j)) if replies[j].1 == *reply => bytes.clone(),
                _ => reply.encode(),
            };
            prev = Some(encoded.clone());
            out.push((*addr, encoded));
        }
        replies.clear();
        self.reply_scratch = replies;
    }

    /// Handles a burst of raw frames as one admission batch.
    ///
    /// Frames are processed strictly in order with batch-local memos
    /// ([`AdmissionBatch`]) carrying swarm resolution and static-key
    /// authentication across the burst, and replies use the same
    /// adjacent-duplicate encode reuse as
    /// [`SignalingServer::handle_frame_into`]. Reply bytes and server
    /// state are identical to calling `handle_frame_into` once per frame;
    /// only the cost differs. Undecodable frames are skipped.
    pub fn handle_frames_batch_into(
        &mut self,
        frames: &[(Addr, bytes::Bytes)],
        now: SimTime,
        geoip: &GeoIpService,
        batch: &mut AdmissionBatch,
        out: &mut Vec<(Addr, bytes::Bytes)>,
    ) {
        batch.clear();
        let fast = self.join_fast_path && crate::wire::wire_mode() == crate::wire::WireMode::Binary;
        let mut replies = std::mem::take(&mut self.reply_scratch);
        for (from, frame) in frames {
            if fast {
                if let Some(view) = crate::wire::decode_join_view(frame) {
                    self.on_join_frame(*from, &view, frame, now, geoip, Some(batch), out);
                    continue;
                }
            }
            // Anything that is not a fast-path join may mutate membership
            // (leave, blacklist via IM report), so the rolling neighbor
            // window cannot survive it.
            batch.neighbor_memo = None;
            let Some(msg) = SignalMsg::decode(frame) else {
                continue;
            };
            replies.clear();
            self.handle_msg(*from, msg, now, geoip, Some(batch), &mut replies);
            let mut prev: Option<bytes::Bytes> = None;
            for i in 0..replies.len() {
                let (addr, reply) = &replies[i];
                let encoded = match (&prev, i.checked_sub(1)) {
                    (Some(bytes), Some(j)) if replies[j].1 == *reply => bytes.clone(),
                    _ => reply.encode(),
                };
                prev = Some(encoded.clone());
                out.push((*addr, encoded));
            }
        }
        replies.clear();
        self.reply_scratch = replies;
    }

    /// Allocating wrapper around [`SignalingServer::handle_frame_into`].
    pub fn handle_frame(
        &mut self,
        from: Addr,
        frame: &bytes::Bytes,
        now: SimTime,
        geoip: &GeoIpService,
    ) -> Vec<(Addr, bytes::Bytes)> {
        let mut out = Vec::new();
        self.handle_frame_into(from, frame, now, geoip, &mut out);
        out
    }

    /// Handles one signaling message, appending `(destination, reply)`
    /// pairs to `out`.
    pub fn handle_into(
        &mut self,
        from: Addr,
        msg: SignalMsg,
        now: SimTime,
        geoip: &GeoIpService,
        out: &mut Vec<(Addr, SignalMsg)>,
    ) {
        self.handle_msg(from, msg, now, geoip, None, out)
    }

    fn handle_msg(
        &mut self,
        from: Addr,
        msg: SignalMsg,
        now: SimTime,
        geoip: &GeoIpService,
        batch: Option<&mut AdmissionBatch>,
        out: &mut Vec<(Addr, SignalMsg)>,
    ) {
        match msg {
            SignalMsg::Join {
                api_key,
                token,
                origin,
                video,
                manifest_hash,
                sdp,
            } => self.on_join(
                from,
                api_key,
                token,
                origin,
                video,
                manifest_hash,
                sdp,
                now,
                geoip,
                batch,
                out,
            ),
            SignalMsg::StatsReport {
                p2p_up_bytes,
                p2p_down_bytes,
            } => self.on_stats(from, p2p_up_bytes, p2p_down_bytes, now),
            SignalMsg::ImReport {
                video,
                rendition,
                seq,
                im,
            } => self.on_im_report(from, video, rendition, seq, im, out),
            SignalMsg::Leave => self.remove_peer_by_addr(from, now),
            // Server-originated messages arriving at the server are ignored.
            _ => {}
        }
    }

    /// Allocating wrapper around [`SignalingServer::handle_into`].
    pub fn handle(
        &mut self,
        from: Addr,
        msg: SignalMsg,
        now: SimTime,
        geoip: &GeoIpService,
    ) -> Vec<(Addr, SignalMsg)> {
        let mut out = Vec::new();
        self.handle_into(from, msg, now, geoip, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn on_join(
        &mut self,
        from: Addr,
        api_key: Option<String>,
        token: Option<String>,
        origin: String,
        video: String,
        manifest_hash: String,
        sdp: pdn_webrtc::SessionDescription,
        now: SimTime,
        geoip: &GeoIpService,
        mut batch: Option<&mut AdmissionBatch>,
        out: &mut Vec<(Addr, SignalMsg)>,
    ) {
        // §V-B: peer identity binds to the transport address so expelled
        // peers cannot simply rejoin.
        if self.blacklist_addrs.contains(&from) {
            out.push((
                from,
                SignalMsg::JoinDenied {
                    reason: "peer is blacklisted".into(),
                },
            ));
            return;
        }

        // Private platforms: only registered video sources participate.
        if let Some(reg) = &self.registered_sources {
            if !reg.contains(&video) {
                out.push((
                    from,
                    SignalMsg::JoinDenied {
                        reason: "video source not registered".into(),
                    },
                ));
                return;
            }
        }

        let customer_id = match self.authenticate_memo(
            api_key.as_deref(),
            token.as_deref(),
            &origin,
            &video,
            now,
            batch.as_deref_mut(),
        ) {
            Ok(id) => id,
            Err(e) => {
                out.push((
                    from,
                    SignalMsg::JoinDenied {
                        reason: e.to_string(),
                    },
                ));
                return;
            }
        };

        let peer_id = self.next_peer_id;
        self.next_peer_id += 1;

        let geo = geoip.lookup(from.ip);
        let (country, isp) = match geo {
            Some(g) => (
                Some(self.geos.intern(&g.country)),
                Some(self.geos.intern(&g.isp)),
            ),
            None => (None, None),
        };

        let slot = self.resolve_swarm(&video, &manifest_hash, batch);

        // Candidate neighbors under the matching policy: walking members
        // youngest-first with an early cap is exactly the old
        // filter → reverse → truncate, without the intermediate Vec. The
        // compat path materialises each neighbor's SDP from its interned
        // wire fragment (the frame path splices the fragment instead).
        let members = &self.swarms[slot as usize].members;
        let mut neighbors: Vec<(u64, pdn_webrtc::SessionDescription)> =
            Vec::with_capacity(self.max_neighbors.min(members.len()));
        let mut notify: Vec<Addr> = Vec::with_capacity(neighbors.capacity());
        for m in members.iter().rev().flatten() {
            if neighbors.len() == self.max_neighbors {
                break;
            }
            if self.blacklist.contains(&m.peer_id) {
                continue;
            }
            let matches = match self.matching {
                MatchingPolicy::Global => true,
                MatchingPolicy::SameCountry => m.country.is_some() && m.country == country,
                MatchingPolicy::SameIsp => m.isp.is_some() && m.isp == isp,
            };
            if !matches {
                continue;
            }
            let sdp = crate::wire::decode_sdp(&m.sdp_wire).expect("interned SDP decodes");
            neighbors.push((m.peer_id, sdp));
            notify.push(m.addr);
        }

        let sdp_wire = crate::wire::encode_sdp(&sdp);
        self.insert_member(
            from,
            peer_id,
            sdp_wire,
            country,
            isp,
            slot,
            &customer_id,
            now,
        );

        out.push((from, SignalMsg::JoinOk { peer_id, neighbors }));
        for addr in notify {
            out.push((
                addr,
                SignalMsg::PeerJoined {
                    peer_id,
                    sdp: sdp.clone(),
                },
            ));
        }
    }

    /// The zero-copy borrowed join path for binary frames.
    ///
    /// Admission semantics are identical to [`SignalingServer::on_join`]
    /// (the `fast_path_matches_legacy_assembly` test pins reply bytes and
    /// state), but nothing is materialised: credentials stay `&str` views
    /// into the frame, the joiner's SDP is interned as a zero-copy slice of
    /// the datagram, and replies are assembled by splicing the stored SDP
    /// fragments of the selected neighbors straight into the output frame.
    /// With a batch, neighbor selection additionally rides the rolling
    /// [`NeighborMemo`] — one slab walk per `(swarm, tick)` instead of one
    /// per join.
    #[allow(clippy::too_many_arguments)]
    fn on_join_frame(
        &mut self,
        from: Addr,
        view: &crate::wire::JoinView<'_>,
        frame: &bytes::Bytes,
        now: SimTime,
        geoip: &GeoIpService,
        mut batch: Option<&mut AdmissionBatch>,
        out: &mut Vec<(Addr, bytes::Bytes)>,
    ) {
        let deny = |reason: String| SignalMsg::JoinDenied { reason }.encode();
        if self.blacklist_addrs.contains(&from) {
            out.push((from, deny("peer is blacklisted".into())));
            return;
        }
        if let Some(reg) = &self.registered_sources {
            if !reg.contains(view.video) {
                out.push((from, deny("video source not registered".into())));
                return;
            }
        }
        let customer_id = match self.authenticate_memo(
            view.api_key,
            view.token,
            view.origin,
            view.video,
            now,
            batch.as_deref_mut(),
        ) {
            Ok(id) => id,
            Err(e) => {
                out.push((from, deny(e.to_string())));
                return;
            }
        };

        let peer_id = self.next_peer_id;
        self.next_peer_id += 1;

        let geo = geoip.lookup(from.ip);
        let (country, isp) = match geo {
            Some(g) => (
                Some(self.geos.intern(&g.country)),
                Some(self.geos.intern(&g.isp)),
            ),
            None => (None, None),
        };

        let slot = self.resolve_swarm(view.video, view.manifest_hash, batch.as_deref_mut());

        // Neighbor pick: memo window when possible, slab walk otherwise.
        let mut picked = std::mem::take(&mut self.neighbor_scratch);
        picked.clear();
        let memo_ok = matches!(self.matching, MatchingPolicy::Global);
        let memo_hit = memo_ok
            && batch
                .as_deref()
                .and_then(|b| b.neighbor_memo.as_ref())
                .is_some_and(|m| m.slot == slot);
        if memo_hit {
            let b = batch.as_deref_mut().expect("memo_hit implies batch");
            b.hits += 1;
            let m = b.neighbor_memo.as_ref().expect("memo_hit implies memo");
            picked.extend(m.cands.iter().cloned());
        } else {
            for m in self.swarms[slot as usize].members.iter().rev().flatten() {
                if picked.len() == self.max_neighbors {
                    break;
                }
                if self.blacklist.contains(&m.peer_id) {
                    continue;
                }
                let matches = match self.matching {
                    MatchingPolicy::Global => true,
                    MatchingPolicy::SameCountry => m.country.is_some() && m.country == country,
                    MatchingPolicy::SameIsp => m.isp.is_some() && m.isp == isp,
                };
                if !matches {
                    continue;
                }
                picked.push((m.peer_id, m.addr, m.sdp_wire.clone()));
            }
            if memo_ok {
                if let Some(b) = batch.as_deref_mut() {
                    b.neighbor_memo = Some(NeighborMemo {
                        slot,
                        cands: picked.iter().cloned().collect(),
                    });
                }
            }
        }

        // Intern the joiner's SDP as a zero-copy slice of the frame (the
        // fragment was validated by `decode_join_view`).
        let sdp_wire = frame.slice(view.sdp_range.clone());
        self.insert_member(
            from,
            peer_id,
            sdp_wire.clone(),
            country,
            isp,
            slot,
            &customer_id,
            now,
        );
        // Roll the joiner into the memo window: it is now the youngest
        // candidate the next join in the burst must see.
        if memo_ok {
            if let Some(m) = batch.and_then(|b| b.neighbor_memo.as_mut()) {
                if m.slot == slot {
                    m.cands.push_front((peer_id, from, sdp_wire.clone()));
                    m.cands.truncate(self.max_neighbors);
                }
            }
        }

        let mut buf = bytes::BytesMut::with_capacity(
            16 + picked.iter().map(|(_, _, s)| 8 + s.len()).sum::<usize>(),
        );
        crate::wire::encode_join_ok_spliced(
            peer_id,
            picked.len(),
            picked.iter().map(|(id, _, s)| (*id, &s[..])),
            &mut buf,
        );
        out.push((from, buf.freeze()));
        if !picked.is_empty() {
            let mut buf = bytes::BytesMut::with_capacity(16 + sdp_wire.len());
            crate::wire::encode_peer_joined_spliced(peer_id, &sdp_wire, &mut buf);
            let notify = buf.freeze();
            for (_, addr, _) in &picked {
                out.push((*addr, notify.clone()));
            }
        }

        picked.clear();
        self.neighbor_scratch = picked;
    }

    /// Registers a freshly admitted peer: swarm membership, peer slab,
    /// address index, and the customer's join meter. Shared by the compat
    /// and frame join paths so their state transitions cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn insert_member(
        &mut self,
        from: Addr,
        peer_id: u64,
        sdp_wire: bytes::Bytes,
        country: Option<u32>,
        isp: Option<u32>,
        slot: u32,
        customer_id: &str,
        now: SimTime,
    ) {
        let swarm = &mut self.swarms[slot as usize];
        let swarm_pos = swarm.members.len() as u32;
        swarm.members.push(Some(Member {
            peer_id,
            addr: from,
            sdp_wire,
            country,
            isp,
        }));
        swarm.live += 1;
        let customer = self.customers.intern(customer_id);
        debug_assert_eq!(self.peers.len() as u64, peer_id - 1);
        self.peers.push(Some(PeerSlot {
            addr: from,
            customer,
            last_seen: now,
            swarm: slot,
            swarm_pos,
        }));
        self.live_peers += 1;
        self.addr_index.insert(from, peer_id);
        self.meter_mut(customer).add_join();
    }

    /// Resolves `(video, manifest)` to a swarm slot, creating the swarm on
    /// first sight. With a batch, consecutive joins to the same stream hit
    /// the memo instead of the interners + index.
    fn resolve_swarm(
        &mut self,
        video: &str,
        manifest_hash: &str,
        batch: Option<&mut AdmissionBatch>,
    ) -> u32 {
        if let Some(b) = &batch {
            if let Some((v, m, slot)) = &b.swarm_memo {
                if v == video && m == manifest_hash {
                    let slot = *slot;
                    if let Some(b) = batch {
                        b.hits += 1;
                    }
                    return slot;
                }
            }
        }
        let video_id = self.videos.intern(video);
        let manifest_id = self.manifests.intern(manifest_hash);
        let slot = match self.swarm_index.get(&(video_id, manifest_id)) {
            Some(&slot) => slot,
            None => {
                let slot = self.swarms.len() as u32;
                self.swarms.push(Swarm::default());
                self.swarm_index.insert((video_id, manifest_id), slot);
                // Keep the per-video slot list sorted by manifest-hash
                // string: the SIM broadcast iterates it in this order.
                let list = self.video_swarms.entry(video_id).or_default();
                let pos = list
                    .binary_search_by(|&s| {
                        let (_, m) = slot_key(&self.swarm_index, s);
                        self.manifests.resolve(m).cmp(manifest_hash)
                    })
                    .unwrap_or_else(|p| p);
                list.insert(pos, slot);
                slot
            }
        };
        if let Some(b) = batch {
            b.swarm_memo = Some((video.to_string(), manifest_hash.to_string(), slot));
        }
        slot
    }

    /// [`SignalingServer::authenticate`] behind the batch's auth memo.
    /// Only static-key schemes are memoizable (the account registry is
    /// read-only under them); token schemes mutate validator state, and
    /// failures must re-run to produce their exact error, so both always
    /// take the full path.
    fn authenticate_memo(
        &mut self,
        api_key: Option<&str>,
        token: Option<&str>,
        origin: &str,
        video: &str,
        now: SimTime,
        batch: Option<&mut AdmissionBatch>,
    ) -> Result<String, AuthError> {
        let memoizable = matches!(
            self.profile.auth,
            AuthScheme::StaticApiKey | AuthScheme::TenantKey
        );
        if memoizable {
            if let (Some(b), Some(key)) = (&batch, api_key) {
                if let Some((k, o, customer)) = &b.auth_memo {
                    if k == key && o == origin {
                        let customer = customer.clone();
                        if let Some(b) = batch {
                            b.hits += 1;
                        }
                        return Ok(customer);
                    }
                }
            }
        }
        let result = self.authenticate(api_key, token, origin, video, now);
        if memoizable {
            if let (Some(b), Some(key), Ok(customer)) = (batch, api_key, &result) {
                b.auth_memo = Some((key.to_string(), origin.to_string(), customer.clone()));
            }
        }
        result
    }

    fn authenticate(
        &mut self,
        api_key: Option<&str>,
        token: Option<&str>,
        origin: &str,
        video: &str,
        now: SimTime,
    ) -> Result<String, AuthError> {
        match &self.profile.auth {
            AuthScheme::StaticApiKey | AuthScheme::TenantKey => {
                let key = api_key.ok_or(AuthError::MissingCredentials)?;
                let account = self.accounts.authenticate_key(key, origin)?;
                Ok(account.customer_id.clone())
            }
            AuthScheme::TempToken { .. } => {
                let t = token.ok_or(AuthError::MissingCredentials)?;
                match self.temp_tokens.get(t) {
                    None => Err(AuthError::InvalidToken("unknown temp token".into())),
                    Some(None) => Ok("platform".into()),
                    Some(Some(bound)) if bound.0 == video => Ok("platform".into()),
                    Some(Some(_)) => Err(AuthError::InvalidToken(
                        "token bound to another video".into(),
                    )),
                }
            }
            AuthScheme::DisposableJwt => {
                let t = token.ok_or(AuthError::MissingCredentials)?;
                let validator = self
                    .token_validator
                    .as_mut()
                    .expect("validator exists for DisposableJwt");
                let tok = validator.validate(t, &VideoId::new(video), now)?;
                Ok(tok.customer_id)
            }
        }
    }

    fn on_stats(&mut self, from: Addr, up: u64, down: u64, now: SimTime) {
        // Attribute to the peer that joined from this address.
        let Some(peer_id) = self.peer_by_addr(from) else {
            return;
        };
        let Some(info) = self
            .peers
            .get_mut(peer_id as usize - 1)
            .and_then(Option::as_mut)
        else {
            return;
        };
        let watched = now.saturating_since(info.last_seen);
        info.last_seen = now;
        let customer = info.customer;
        let meter = self.meter_mut(customer);
        meter.add_p2p_bytes(up + down);
        meter.add_viewer_time(watched);
    }

    fn on_im_report(
        &mut self,
        from: Addr,
        video: String,
        rendition: u8,
        seq: u64,
        im_hex: String,
        out: &mut Vec<(Addr, SignalMsg)>,
    ) {
        if !self.profile.segment_integrity_check {
            return;
        }
        let Some(peer_id) = self.peer_by_addr(from) else {
            return;
        };
        if self.blacklist.contains(&peer_id) {
            return;
        }
        let Some(im) = parse_hex32(&im_hex) else {
            return;
        };

        let video_id = self.videos.intern(&video);
        let key = (video_id, rendition, seq);
        if !self.im_state.contains_key(&key) {
            // Bounded table: evict the oldest entry FIFO once full.
            if self.im_state.len() >= MAX_IM_ENTRIES {
                if let Some(oldest) = self.im_order.pop_front() {
                    self.im_state.remove(&oldest);
                    self.defense_stats.im_evictions += 1;
                }
            }
            self.im_state.insert(key, ImEntry::default());
            self.im_order.push_back(key);
        }
        let entry = self.im_state.get_mut(&key).expect("inserted above");
        if entry.sim.is_some() {
            return; // already resolved
        }
        match entry.reports.iter_mut().find(|(i, _)| *i == im) {
            Some((_, reporters)) => {
                if reporters.len() >= MAX_REPORTERS_PER_IM {
                    self.defense_stats.im_evictions += 1;
                    return;
                }
                reporters.push(peer_id);
            }
            None => {
                if entry.reports.len() >= MAX_DISTINCT_IMS {
                    self.defense_stats.im_evictions += 1;
                    return;
                }
                entry.reports.push((im, vec![peer_id]));
            }
        }

        let distinct = entry.reports.len();
        let total_reports: usize = entry.reports.iter().map(|(_, r)| r.len()).sum();

        let authentic_im: Option<[u8; 32]> = if distinct > 1 {
            // Conflict: fetch the authoritative segment from the CDN
            // (server overhead the attacker inflicts, §V-B).
            self.defense_stats.im_conflicts += 1;
            let authentic = self.authentic_im(&video, rendition, seq);
            if authentic.is_some() {
                self.defense_stats.cdn_refetches += 1;
            }
            authentic
        } else if total_reports >= self.im_reporters {
            // Unanimous quorum.
            Some(im)
        } else {
            None
        };

        let Some(authentic) = authentic_im else {
            return;
        };

        // Blacklist every peer that reported a different IM. Reports are
        // already in deterministic first-seen order; sorting reporter ids
        // matches the baseline's post-sort exactly.
        let entry = self.im_state.get_mut(&key).expect("entry exists");
        let mut liars = Vec::new();
        for (reported, reporters) in &entry.reports {
            if *reported != authentic {
                liars.extend(reporters.iter().copied());
            }
        }
        liars.sort_unstable();
        let sig = hmac_sha256_keyed(&self.sim_hmac, &[&authentic]);
        entry.sim = Some((authentic, sig));
        self.defense_stats.sims_issued += 1;

        for liar in liars {
            if self.blacklist.insert(liar) {
                self.defense_stats.blacklisted_peers += 1;
                if let Some(info) = self.peer(liar) {
                    let addr = info.addr;
                    self.blacklist_addrs.insert(addr);
                    out.push((
                        addr,
                        SignalMsg::Blacklisted {
                            reason: "fake integrity metadata".into(),
                        },
                    ));
                }
                self.remove_from_swarms(liar);
            }
        }

        // Broadcast the SIM to every member of swarms for this video. The
        // per-video slot list is kept sorted by manifest hash, so this
        // walks in the same order the baseline's key-sort produced.
        let sim_msg = SignalMsg::SimBroadcast {
            video: video.clone(),
            rendition,
            seq,
            im: pdn_crypto::hex(&authentic),
            sig: pdn_crypto::hex(&sig),
        };
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        if let Some(slots) = self.video_swarms.get(&video_id) {
            for &slot in slots {
                for m in self.swarms[slot as usize].members.iter().flatten() {
                    if self.blacklist.contains(&m.peer_id) || !seen.insert(m.peer_id) {
                        continue;
                    }
                    out.push((m.addr, sim_msg.clone()));
                }
            }
        }
    }

    /// Verifies a SIM signature (what honest peers do on receipt).
    pub fn verify_sim(key: &[u8], im: &[u8; 32], sig: &[u8; 32]) -> bool {
        pdn_crypto::ct_eq(&hmac_sha256(key, im), sig)
    }

    /// Like [`SignalingServer::verify_sim`], but with a precomputed
    /// [`HmacKey`] — peers verifying many SIM broadcasts pay the key
    /// schedule once instead of per signature.
    pub fn verify_sim_keyed(key: &HmacKey, im: &[u8; 32], sig: &[u8; 32]) -> bool {
        pdn_crypto::ct_eq(&hmac_sha256_keyed(key, &[im]), sig)
    }

    /// The server's SIM key (shared with peers for verification; in a real
    /// deployment this would be an asymmetric signature).
    pub fn sim_key(&self) -> &[u8] {
        &self.sim_key
    }

    fn authentic_im(&mut self, video: &str, rendition: u8, seq: u64) -> Option<[u8; 32]> {
        let origin = self.origin.as_ref()?;
        let seg = origin.segment(&SegmentId {
            video: VideoId::new(video),
            rendition,
            seq,
        })?;
        self.defense_stats.cdn_refetch_bytes += seg.len() as u64;
        Some(compute_im(&seg.data, video, rendition, seq))
    }

    /// Removes the peer that joined from `addr`, accruing its watch time.
    pub fn remove_peer_by_addr(&mut self, addr: Addr, now: SimTime) {
        let Some(peer_id) = self.peer_by_addr(addr) else {
            return;
        };
        if let Some(info) = self
            .peers
            .get_mut(peer_id as usize - 1)
            .and_then(Option::take)
        {
            self.live_peers -= 1;
            // Drop the address mapping only if it still points at this
            // peer (a newer join from the same address wins).
            if self.addr_index.get(&addr) == Some(&peer_id) {
                self.addr_index.remove(&addr);
            }
            let watched = now.saturating_since(info.last_seen);
            self.meter_mut(info.customer).add_viewer_time(watched);
            self.remove_member(info.swarm, info.swarm_pos, peer_id);
        }
    }

    /// Removes a (possibly still live) peer from its swarm via the
    /// reverse indexes — O(1) instead of the old membership scan.
    fn remove_from_swarms(&mut self, peer_id: u64) {
        if let Some((slot, pos)) = self.peer(peer_id).map(|p| (p.swarm, p.swarm_pos)) {
            self.remove_member(slot, pos, peer_id);
        }
    }

    /// Tombstones the member at `pos` if it is still `peer_id` (a
    /// compaction may have moved it; a blacklist removal may already have
    /// cleared it), then compacts the swarm once tombstones outnumber
    /// live members.
    fn remove_member(&mut self, slot: u32, pos: u32, peer_id: u64) {
        let swarm = &mut self.swarms[slot as usize];
        match swarm.members.get_mut(pos as usize) {
            Some(m @ Some(_)) if m.as_ref().is_some_and(|m| m.peer_id == peer_id) => {
                *m = None;
                swarm.live -= 1;
            }
            _ => return,
        }
        let dead = swarm.members.len() - swarm.live as usize;
        if dead > (swarm.live as usize).max(32) {
            self.compact_swarm(slot);
        }
    }

    /// Drops tombstones from a swarm, preserving join order, and rewrites
    /// the `swarm_pos` back-pointers of the surviving members.
    fn compact_swarm(&mut self, slot: u32) {
        let swarm = &mut self.swarms[slot as usize];
        swarm.members.retain(Option::is_some);
        for (pos, m) in swarm.members.iter().enumerate() {
            let peer_id = m.as_ref().expect("tombstones retained out").peer_id;
            if let Some(p) = self
                .peers
                .get_mut(peer_id as usize - 1)
                .and_then(Option::as_mut)
            {
                p.swarm_pos = pos as u32;
            }
        }
    }
}

/// Resolves a swarm slot back to its `(video, manifest)` interned key.
/// Slots are few per video, so the reverse walk over the index is cheaper
/// than storing the key twice.
fn slot_key(index: &FxHashMap<(u32, u32), u32>, slot: u32) -> (u32, u32) {
    index
        .iter()
        .find_map(|(k, &s)| (s == slot).then_some(*k))
        .expect("slot registered")
}

/// Computes integrity metadata for a segment: the hash of the tuple
/// (content, video identifier, position) — §V-B's replay-resistant IM.
pub fn compute_im(data: &[u8], video: &str, rendition: u8, seq: u64) -> [u8; 32] {
    let mut h = pdn_crypto::sha256::Sha256::new();
    h.update(data);
    h.update(video.as_bytes());
    h.update(&[rendition]);
    h.update(&seq.to_be_bytes());
    h.finalize()
}

pub(crate) fn parse_hex32(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::CustomerAccount;
    use pdn_simnet::{GeoInfo, SimRng};
    use pdn_webrtc::{Candidate, CandidateKind, Certificate, SessionDescription};

    fn sdp(seed: u64) -> SessionDescription {
        let mut rng = SimRng::seed(seed);
        SessionDescription {
            ice_ufrag: format!("u{seed}"),
            ice_pwd: format!("p{seed}"),
            fingerprint: Certificate::generate(&mut rng).fingerprint(),
            candidates: vec![Candidate::new(
                CandidateKind::Host,
                Addr::new(20, 0, 0, seed as u8, 4000),
            )],
        }
    }

    fn join(origin: &str, video: &str, key: &str, seed: u64) -> SignalMsg {
        SignalMsg::Join {
            api_key: Some(key.into()),
            token: None,
            origin: origin.into(),
            video: video.into(),
            manifest_hash: "m0".into(),
            sdp: sdp(seed),
        }
    }

    fn server() -> (SignalingServer, GeoIpService) {
        let mut s = SignalingServer::new(ProviderProfile::peer5(), 1);
        s.accounts_mut().register(CustomerAccount::new(
            "victim",
            "key-victim",
            ["victim.tv".to_string()],
        ));
        (s, GeoIpService::new())
    }

    fn addr(d: u8) -> Addr {
        Addr::new(40, 0, 0, d, 6000)
    }

    #[test]
    fn join_and_neighbor_introduction() {
        let (mut s, geo) = server();
        let replies = s.handle(
            addr(1),
            join("victim.tv", "v", "key-victim", 1),
            SimTime::ZERO,
            &geo,
        );
        assert!(matches!(
            replies[..],
            [(_, SignalMsg::JoinOk { peer_id: 1, ref neighbors })] if neighbors.is_empty()
        ));
        let replies = s.handle(
            addr(2),
            join("victim.tv", "v", "key-victim", 2),
            SimTime::ZERO,
            &geo,
        );
        // Second peer gets the first as a neighbor, first gets PeerJoined.
        assert_eq!(replies.len(), 2);
        assert!(matches!(
            &replies[0],
            (a, SignalMsg::JoinOk { neighbors, .. }) if *a == addr(2) && neighbors.len() == 1
        ));
        assert!(matches!(
            &replies[1],
            (a, SignalMsg::PeerJoined { .. }) if *a == addr(1)
        ));
    }

    #[test]
    fn cross_domain_join_accepted_by_default() {
        // Peer5 default: no allowlist — the free-riding vulnerability.
        let (mut s, geo) = server();
        let replies = s.handle(
            addr(9),
            join("attacker.example", "v", "key-victim", 9),
            SimTime::ZERO,
            &geo,
        );
        assert!(matches!(replies[..], [(_, SignalMsg::JoinOk { .. })]));
        assert_eq!(s.meter("victim").joins, 1, "the victim is billed");
    }

    #[test]
    fn allowlist_blocks_but_spoofed_origin_passes() {
        let (mut s, geo) = server();
        s.accounts_mut()
            .by_key_mut("key-victim")
            .unwrap()
            .allowlist_enabled = true;
        let denied = s.handle(
            addr(9),
            join("attacker.example", "v", "key-victim", 9),
            SimTime::ZERO,
            &geo,
        );
        assert!(matches!(denied[..], [(_, SignalMsg::JoinDenied { .. })]));
        // The domain-spoofing attack: proxy rewrote the Origin header.
        let spoofed = s.handle(
            addr(9),
            join("victim.tv", "v", "key-victim", 9),
            SimTime::ZERO,
            &geo,
        );
        assert!(matches!(spoofed[..], [(_, SignalMsg::JoinOk { .. })]));
    }

    #[test]
    fn different_manifest_hash_isolates_swarms() {
        // The slow-start/manifest consistency that defeats *direct*
        // pollution: a peer with a doctored manifest never meets victims.
        let (mut s, geo) = server();
        s.handle(
            addr(1),
            join("victim.tv", "v", "key-victim", 1),
            SimTime::ZERO,
            &geo,
        );
        let mut msg = join("victim.tv", "v", "key-victim", 2);
        if let SignalMsg::Join { manifest_hash, .. } = &mut msg {
            *manifest_hash = "DOCTORED".into();
        }
        let replies = s.handle(addr(2), msg, SimTime::ZERO, &geo);
        assert!(matches!(
            &replies[..],
            [(_, SignalMsg::JoinOk { neighbors, .. })] if neighbors.is_empty()
        ));
    }

    #[test]
    fn stats_reports_bill_the_key_owner() {
        let (mut s, geo) = server();
        s.handle(
            addr(1),
            join("x", "v", "key-victim", 1),
            SimTime::ZERO,
            &geo,
        );
        s.handle(
            addr(1),
            SignalMsg::StatsReport {
                p2p_up_bytes: 1_000_000,
                p2p_down_bytes: 2_000_000,
            },
            SimTime::from_secs(60),
            &geo,
        );
        let m = s.meter("victim");
        assert_eq!(m.p2p_bytes, 3_000_000);
        assert_eq!(m.viewer_seconds, 60);
    }

    #[test]
    fn leave_accrues_watch_time_and_frees_the_slot() {
        let (mut s, geo) = server();
        s.handle(
            addr(1),
            join("x", "v", "key-victim", 1),
            SimTime::ZERO,
            &geo,
        );
        assert_eq!(s.peer_count(), 1);
        assert_eq!(s.known_peer_addrs().collect::<Vec<_>>(), vec![addr(1)]);
        s.handle(addr(1), SignalMsg::Leave, SimTime::from_secs(30), &geo);
        assert_eq!(s.peer_count(), 0);
        assert_eq!(s.known_peer_addrs().count(), 0);
        assert_eq!(s.meter("victim").viewer_seconds, 30);
        // A rejoin from the same address gets a fresh, never-reused id.
        let r = s.handle(
            addr(1),
            join("x", "v", "key-victim", 2),
            SimTime::from_secs(31),
            &geo,
        );
        assert!(matches!(r[..], [(_, SignalMsg::JoinOk { peer_id: 2, .. })]));
    }

    #[test]
    fn same_country_matching_filters_neighbors() {
        let mut s = SignalingServer::new(ProviderProfile::peer5(), 1);
        s.accounts_mut()
            .register(CustomerAccount::new("c", "k", []));
        s.set_matching(MatchingPolicy::SameCountry);
        let mut geo = GeoIpService::new();
        let cn = geo.allocate(&GeoInfo::new("CN", 1, "AS4134"));
        let us = geo.allocate(&GeoInfo::new("US", 1, "AS7922"));
        let cn2 = geo.allocate(&GeoInfo::new("CN", 2, "AS4135"));
        let a_cn = Addr::from_ip(cn, 1);
        let a_us = Addr::from_ip(us, 1);
        let a_cn2 = Addr::from_ip(cn2, 1);
        s.handle(a_cn, join("x", "v", "k", 1), SimTime::ZERO, &geo);
        // US viewer sees no CN neighbor.
        let r = s.handle(a_us, join("x", "v", "k", 2), SimTime::ZERO, &geo);
        assert!(matches!(
            &r[..],
            [(_, SignalMsg::JoinOk { neighbors, .. })] if neighbors.is_empty()
        ));
        // Another CN viewer is introduced to the first.
        let r = s.handle(a_cn2, join("x", "v", "k", 3), SimTime::ZERO, &geo);
        assert!(matches!(
            &r[..],
            [(_, SignalMsg::JoinOk { neighbors, .. }), _] if neighbors.len() == 1
        ));
    }

    fn hardened_server_with_origin() -> (SignalingServer, GeoIpService, pdn_media::VideoSource) {
        let profile = ProviderProfile::hardened(&ProviderProfile::peer5());
        // Use static keys for join simplicity: rebuild with integrity only.
        let mut profile = profile;
        profile.auth = AuthScheme::StaticApiKey;
        let mut s = SignalingServer::new(profile, 7);
        s.accounts_mut()
            .register(CustomerAccount::new("c", "k", []));
        s.set_im_reporters(2);
        let src =
            pdn_media::VideoSource::vod("v", vec![400_000], std::time::Duration::from_secs(4), 10);
        let mut origin = OriginServer::new();
        origin.publish(src.clone());
        s.attach_origin(origin);
        (s, GeoIpService::new(), src)
    }

    #[test]
    fn unanimous_im_reports_yield_sim() {
        let (mut s, geo, src) = hardened_server_with_origin();
        s.handle(addr(1), join("x", "v", "k", 1), SimTime::ZERO, &geo);
        s.handle(addr(2), join("x", "v", "k", 2), SimTime::ZERO, &geo);
        let seg = src.segment(0, 5).unwrap();
        let im = compute_im(&seg.data, "v", 0, 5);
        let report = |s: &mut SignalingServer, from: Addr| {
            s.handle(
                from,
                SignalMsg::ImReport {
                    video: "v".into(),
                    rendition: 0,
                    seq: 5,
                    im: pdn_crypto::hex(&im),
                },
                SimTime::ZERO,
                &geo,
            )
        };
        assert!(
            report(&mut s, addr(1)).is_empty(),
            "below quorum: no SIM yet"
        );
        let out = report(&mut s, addr(2));
        // Quorum reached: SIM broadcast to both members.
        let sims = out
            .iter()
            .filter(|(_, m)| matches!(m, SignalMsg::SimBroadcast { .. }))
            .count();
        assert_eq!(sims, 2);
        assert_eq!(s.defense_stats().sims_issued, 1);
        assert_eq!(s.defense_stats().im_conflicts, 0);
    }

    #[test]
    fn conflicting_im_blacklists_the_liar() {
        let (mut s, geo, src) = hardened_server_with_origin();
        s.handle(addr(1), join("x", "v", "k", 1), SimTime::ZERO, &geo);
        s.handle(addr(2), join("x", "v", "k", 2), SimTime::ZERO, &geo);
        let seg = src.segment(0, 5).unwrap();
        let honest_im = compute_im(&seg.data, "v", 0, 5);
        let fake_im = [0xeeu8; 32];
        s.handle(
            addr(1),
            SignalMsg::ImReport {
                video: "v".into(),
                rendition: 0,
                seq: 5,
                im: pdn_crypto::hex(&honest_im),
            },
            SimTime::ZERO,
            &geo,
        );
        let out = s.handle(
            addr(2),
            SignalMsg::ImReport {
                video: "v".into(),
                rendition: 0,
                seq: 5,
                im: pdn_crypto::hex(&fake_im),
            },
            SimTime::ZERO,
            &geo,
        );
        // Conflict: server refetched from CDN, blacklisted peer 2, and the
        // SIM carries the honest IM.
        let stats = s.defense_stats();
        assert_eq!(stats.im_conflicts, 1);
        assert_eq!(stats.cdn_refetches, 1);
        assert!(stats.cdn_refetch_bytes > 0);
        assert_eq!(stats.blacklisted_peers, 1);
        assert!(s.is_blacklisted(2));
        assert!(out
            .iter()
            .any(|(a, m)| matches!(m, SignalMsg::Blacklisted { .. }) && *a == addr(2)));
        let sim_ok = out.iter().any(|(_, m)| {
            matches!(m, SignalMsg::SimBroadcast { im, .. } if *im == pdn_crypto::hex(&honest_im))
        });
        assert!(sim_ok, "broadcast SIM must carry the authentic IM");
    }

    #[test]
    fn blacklisted_address_cannot_rejoin() {
        let (mut s, geo, src) = hardened_server_with_origin();
        s.handle(addr(1), join("x", "v", "k", 1), SimTime::ZERO, &geo);
        s.handle(addr(2), join("x", "v", "k", 2), SimTime::ZERO, &geo);
        let seg = src.segment(0, 5).unwrap();
        let honest = compute_im(&seg.data, "v", 0, 5);
        s.handle(
            addr(1),
            SignalMsg::ImReport {
                video: "v".into(),
                rendition: 0,
                seq: 5,
                im: pdn_crypto::hex(&honest),
            },
            SimTime::ZERO,
            &geo,
        );
        s.handle(
            addr(2),
            SignalMsg::ImReport {
                video: "v".into(),
                rendition: 0,
                seq: 5,
                im: pdn_crypto::hex(&[9u8; 32]),
            },
            SimTime::ZERO,
            &geo,
        );
        assert!(s.is_blacklisted(2));
        // The expelled address is refused at the door.
        let r = s.handle(addr(2), join("x", "v", "k", 3), SimTime::from_secs(1), &geo);
        assert!(
            matches!(&r[..], [(_, SignalMsg::JoinDenied { reason })] if reason.contains("blacklist"))
        );
    }

    #[test]
    fn im_is_position_bound() {
        // The replay-attack resistance: same content at a different
        // position yields a different IM.
        let data = b"segment-bytes";
        let a = compute_im(data, "v", 0, 1);
        let b = compute_im(data, "v", 0, 2);
        let c = compute_im(data, "w", 0, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn im_state_caps_bound_memory_and_count_evictions() {
        let (mut s, geo, _src) = hardened_server_with_origin();
        // Detach the origin so conflicts never resolve and reports pile up.
        s.origin = None;
        s.set_im_reporters(usize::MAX >> 1);
        s.handle(addr(1), join("x", "v", "k", 1), SimTime::ZERO, &geo);
        // Far more distinct IMs for one segment than the per-entry cap.
        for i in 0..(MAX_DISTINCT_IMS as u32 + 40) {
            let mut im = [0u8; 32];
            im[..4].copy_from_slice(&i.to_be_bytes());
            s.handle(
                addr(1),
                SignalMsg::ImReport {
                    video: "v".into(),
                    rendition: 0,
                    seq: 0,
                    im: pdn_crypto::hex(&im),
                },
                SimTime::ZERO,
                &geo,
            );
        }
        let entry = &s.im_state[&(s.videos.get("v").unwrap(), 0, 0)];
        assert_eq!(entry.reports.len(), MAX_DISTINCT_IMS);
        assert_eq!(s.defense_stats().im_evictions, 40);
        // And far more segment entries than the table cap.
        for seq in 0..(MAX_IM_ENTRIES as u64 + 10) {
            s.handle(
                addr(1),
                SignalMsg::ImReport {
                    video: "v".into(),
                    rendition: 1,
                    seq,
                    im: pdn_crypto::hex(&[7u8; 32]),
                },
                SimTime::ZERO,
                &geo,
            );
        }
        assert!(s.im_state.len() <= MAX_IM_ENTRIES);
        assert!(s.defense_stats().im_evictions >= 50);
    }

    #[test]
    fn temp_token_binding_matters() {
        // Mango TV-style (unbound): token minted for any video works for
        // the attacker's own stream — free-ridable.
        let mut mango = SignalingServer::new(ProviderProfile::private_mango_tv(), 1);
        let geo = GeoIpService::new();
        let t = mango.mint_temp_token(Some(VideoId::new("platform-video")));
        let j = SignalMsg::Join {
            api_key: None,
            token: Some(t),
            origin: "attacker.example".into(),
            video: "attacker-video".into(),
            manifest_hash: "m".into(),
            sdp: sdp(1),
        };
        let r = mango.handle(addr(1), j, SimTime::ZERO, &geo);
        assert!(matches!(r[..], [(_, SignalMsg::JoinOk { .. })]));

        // A bound variant rejects the attacker's video.
        let mut profile = ProviderProfile::private_mango_tv();
        profile.auth = AuthScheme::TempToken { video_bound: true };
        let mut bound = SignalingServer::new(profile, 1);
        let t = bound.mint_temp_token(Some(VideoId::new("platform-video")));
        let j = SignalMsg::Join {
            api_key: None,
            token: Some(t),
            origin: "attacker.example".into(),
            video: "attacker-video".into(),
            manifest_hash: "m".into(),
            sdp: sdp(1),
        };
        let r = bound.handle(addr(1), j, SimTime::ZERO, &geo);
        assert!(matches!(r[..], [(_, SignalMsg::JoinDenied { .. })]));
    }

    #[test]
    fn registered_sources_gate_private_platforms() {
        let mut s = SignalingServer::new(ProviderProfile::private_mango_tv(), 1);
        s.set_registered_sources(["official-video".to_string()]);
        let geo = GeoIpService::new();
        let t = s.mint_temp_token(None);
        let j = SignalMsg::Join {
            api_key: None,
            token: Some(t),
            origin: "x".into(),
            video: "custom-video".into(),
            manifest_hash: "m".into(),
            sdp: sdp(1),
        };
        let r = s.handle(addr(1), j, SimTime::ZERO, &geo);
        assert!(matches!(r[..], [(_, SignalMsg::JoinDenied { .. })]));
    }

    /// A batched burst must be indistinguishable from per-frame handling:
    /// identical reply bytes in identical order, identical server state.
    #[test]
    fn batch_matches_sequential() {
        let (mut seq, geo) = server();
        let (mut bat, _) = server();

        let mut frames: Vec<(Addr, bytes::Bytes)> = Vec::new();
        // A join burst to one stream (memo hits), a second stream, a bad
        // key (denied, never memoized), a stats report, a leave, junk.
        for d in 1..=20u8 {
            frames.push((
                addr(d),
                join("victim.tv", "v", "key-victim", d as u64).encode(),
            ));
        }
        frames.push((
            addr(21),
            join("victim.tv", "other", "key-victim", 21).encode(),
        ));
        frames.push((addr(22), join("victim.tv", "v", "wrong-key", 22).encode()));
        frames.push((
            addr(3),
            SignalMsg::StatsReport {
                p2p_up_bytes: 10,
                p2p_down_bytes: 20,
            }
            .encode(),
        ));
        frames.push((addr(4), SignalMsg::Leave.encode()));
        frames.push((addr(23), bytes::Bytes::from_static(b"not a frame")));
        frames.push((addr(24), join("victim.tv", "v", "key-victim", 24).encode()));

        let now = SimTime::from_secs(5);
        let mut seq_out = Vec::new();
        for (from, frame) in &frames {
            seq.handle_frame_into(*from, frame, now, &geo, &mut seq_out);
        }

        let mut batch = AdmissionBatch::new();
        let mut bat_out = Vec::new();
        bat.handle_frames_batch_into(&frames, now, &geo, &mut batch, &mut bat_out);

        assert_eq!(seq_out, bat_out, "reply streams diverged");
        assert!(batch.hits() > 0, "burst should hit the memos");
        assert_eq!(seq.peer_count(), bat.peer_count());
        assert_eq!(seq.meter("victim"), bat.meter("victim"));
    }

    /// The zero-copy borrowed join path (JoinView + spliced replies +
    /// interned frame-slice SDPs) must be byte-identical to the owned
    /// `SignalMsg` assembly it replaced — replies, order, and state.
    #[test]
    fn fast_path_matches_legacy_assembly() {
        let frames: Vec<(Addr, bytes::Bytes)> = {
            let mut f: Vec<(Addr, bytes::Bytes)> = Vec::new();
            for d in 1..=20u8 {
                f.push((
                    addr(d),
                    join("victim.tv", "v", "key-victim", d as u64).encode(),
                ));
            }
            f.push((
                addr(21),
                join("victim.tv", "other", "key-victim", 21).encode(),
            ));
            f.push((addr(22), join("victim.tv", "v", "wrong-key", 22).encode()));
            f.push((addr(4), SignalMsg::Leave.encode()));
            f.push((addr(24), join("victim.tv", "v", "key-victim", 24).encode()));
            f
        };
        let now = SimTime::from_secs(5);

        // Per-frame: fast vs legacy.
        let (mut fast, geo) = server();
        let (mut legacy, _) = server();
        legacy.set_join_fast_path(false);
        let (mut fast_out, mut legacy_out) = (Vec::new(), Vec::new());
        for (from, frame) in &frames {
            fast.handle_frame_into(*from, frame, now, &geo, &mut fast_out);
            legacy.handle_frame_into(*from, frame, now, &geo, &mut legacy_out);
        }
        assert_eq!(fast_out, legacy_out, "per-frame reply streams diverged");
        assert_eq!(fast.peer_count(), legacy.peer_count());
        assert_eq!(fast.meter("victim"), legacy.meter("victim"));

        // Batched: fast (with neighbor memo) vs legacy.
        let (mut fast_b, _) = server();
        let (mut legacy_b, _) = server();
        legacy_b.set_join_fast_path(false);
        let (mut fb_out, mut lb_out) = (Vec::new(), Vec::new());
        let mut batch = AdmissionBatch::new();
        fast_b.handle_frames_batch_into(&frames, now, &geo, &mut batch, &mut fb_out);
        let mut batch2 = AdmissionBatch::new();
        legacy_b.handle_frames_batch_into(&frames, now, &geo, &mut batch2, &mut lb_out);
        assert_eq!(fb_out, lb_out, "batched reply streams diverged");
        assert_eq!(fb_out, fast_out, "batched vs per-frame diverged");
        assert_eq!(fast_b.meter("victim"), legacy_b.meter("victim"));
        assert!(
            batch.hits() > batch2.hits(),
            "neighbor memo should add hits"
        );
    }

    /// The rolling neighbor window must survive a join burst (each joiner
    /// becomes the next join's youngest candidate) and die on interleaved
    /// leaves — a leave mid-burst mutates membership under the memo.
    #[test]
    fn neighbor_memo_rolls_and_invalidates_on_leave() {
        let now = SimTime::from_secs(1);
        let mut frames: Vec<(Addr, bytes::Bytes)> = (1..=6u8)
            .map(|d| {
                (
                    addr(d),
                    join("victim.tv", "v", "key-victim", d as u64).encode(),
                )
            })
            .collect();
        // Leave of the youngest member, then more joins: the post-leave
        // joins must not be offered the departed peer.
        frames.push((addr(6), SignalMsg::Leave.encode()));
        frames.push((addr(7), join("victim.tv", "v", "key-victim", 7).encode()));

        let (mut bat, geo) = server();
        let mut batch = AdmissionBatch::new();
        let mut bat_out = Vec::new();
        bat.handle_frames_batch_into(&frames, now, &geo, &mut batch, &mut bat_out);

        let (mut seq, _) = server();
        let mut seq_out = Vec::new();
        for (from, frame) in &frames {
            seq.handle_frame_into(*from, frame, now, &geo, &mut seq_out);
        }
        assert_eq!(bat_out, seq_out, "memo changed selection semantics");
        // The last join's JoinOk (first reply of the last join's group)
        // must introduce peers 2..=5, not the departed peer 6.
        let last_join_ok = bat_out
            .iter()
            .rev()
            .find(|(a, _)| *a == addr(7))
            .expect("join ok for last joiner");
        let Some(SignalMsg::JoinOk { neighbors, .. }) = SignalMsg::decode(&last_join_ok.1) else {
            panic!("expected JoinOk");
        };
        let ids: Vec<u64> = neighbors.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![5, 4, 3, 2], "youngest-first survivors");
    }

    /// Heavy join/leave churn through the tombstoned membership: the
    /// compactor must keep `swarm_pos` back-pointers valid and neighbor
    /// introduction must only ever offer live peers.
    #[test]
    fn churn_keeps_membership_consistent() {
        let (mut s, geo) = server();
        for d in 1..=120u8 {
            s.handle(
                addr(d),
                join("victim.tv", "v", "key-victim", d as u64),
                SimTime::ZERO,
                &geo,
            );
        }
        assert_eq!(s.peer_count(), 120);
        // Leave in a scattered order to exercise tombstones + compaction.
        for d in (1..=100u8).rev() {
            s.handle(addr(d), SignalMsg::Leave, SimTime::from_secs(1), &geo);
        }
        assert_eq!(s.peer_count(), 20);
        // Double-leave is a no-op.
        s.handle(addr(50), SignalMsg::Leave, SimTime::from_secs(1), &geo);
        assert_eq!(s.peer_count(), 20);

        let replies = s.handle(
            addr(200),
            join("victim.tv", "v", "key-victim", 200),
            SimTime::from_secs(2),
            &geo,
        );
        let (_, SignalMsg::JoinOk { neighbors, .. }) = &replies[0] else {
            panic!("expected JoinOk, got {replies:?}");
        };
        assert_eq!(neighbors.len(), 4, "full neighbor set from survivors");
        for (peer_id, _) in neighbors {
            // Survivors are peers 101..=120; the leavers must never be
            // offered.
            assert!(
                (101..=120).contains(peer_id),
                "introduced dead peer {peer_id}"
            );
        }
        // Leave everyone, rejoin, and the swarm still works.
        for d in 101..=120u8 {
            s.handle(addr(d), SignalMsg::Leave, SimTime::from_secs(3), &geo);
        }
        s.handle(addr(200), SignalMsg::Leave, SimTime::from_secs(3), &geo);
        assert_eq!(s.peer_count(), 0);
        let replies = s.handle(
            addr(201),
            join("victim.tv", "v", "key-victim", 201),
            SimTime::from_secs(4),
            &geo,
        );
        assert!(matches!(
            replies[..],
            [(_, SignalMsg::JoinOk { ref neighbors, .. })] if neighbors.is_empty()
        ));
    }
}

//! Capture-based PDN traffic detection (§III-C "Detecting PDN traffic").
//!
//! "Our approach is based upon the observation that PDN utilizes the
//! plain-text STUN protocol to exchange IP information between peers …
//! we captured its network traffic, from which STUN binding requests can be
//! easily identified along with IP addresses of candidate peers. As WebRTC
//! enforces a DTLS handshake between peers, we then checked all the DTLS
//! connections that typically follow the STUN binding requests. If a DTLS
//! connection is observed between known candidate peer pairs, we consider
//! the respective website or app a confirmed PDN customer."
//!
//! [`analyze_capture`] implements exactly that rule over simulator frames —
//! the same function serves the large-scale detector and the PDN analyzer's
//! per-experiment verdicts.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use pdn_simnet::{Addr, CapturedFrame};
use pdn_webrtc::{dtls, stun};

/// What the capture analysis found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Number of STUN binding requests seen.
    pub stun_binding_requests: usize,
    /// Candidate peer transport addresses learned from STUN traffic
    /// (sources, destinations, and mapped addresses), infra excluded.
    pub candidate_peers: BTreeSet<Addr>,
    /// DTLS flows observed between candidate peers.
    pub dtls_pairs: BTreeSet<(Addr, Addr)>,
    /// Total DTLS frames seen, whether or not between candidates (relayed
    /// WebRTC shows DTLS but never a candidate pair).
    pub dtls_frames: usize,
    /// The §III-C verdict: a DTLS connection between known candidates.
    pub pdn_confirmed: bool,
    /// Distinct candidate-peer IPs (the §IV-D harvest).
    pub peer_ips: BTreeSet<Ipv4Addr>,
}

/// Analyzes a packet capture; `infra` lists server IPs (STUN, signaling,
/// CDN, TURN) that must not be mistaken for peers.
pub fn analyze_capture(frames: &[CapturedFrame], infra: &[Ipv4Addr]) -> TrafficReport {
    let is_infra = |a: &Addr| infra.contains(&a.ip);
    let mut report = TrafficReport::default();

    for f in frames {
        if !stun::is_stun(&f.payload) {
            continue;
        }
        let Ok(msg) = stun::Message::decode(&f.payload) else {
            continue;
        };
        if msg.class == stun::Class::Request && msg.method == stun::Method::Binding {
            report.stun_binding_requests += 1;
        }
        for addr in [f.src, f.dst].into_iter().chain(msg.mapped_address()) {
            if !is_infra(&addr) {
                report.candidate_peers.insert(addr);
            }
        }
    }

    for f in frames {
        if !dtls::is_dtls(&f.payload) {
            continue;
        }
        report.dtls_frames += 1;
        let pair_known =
            report.candidate_peers.contains(&f.src) && report.candidate_peers.contains(&f.dst);
        if pair_known && !is_infra(&f.src) && !is_infra(&f.dst) {
            let pair = if f.src <= f.dst {
                (f.src, f.dst)
            } else {
                (f.dst, f.src)
            };
            report.dtls_pairs.insert(pair);
        }
    }

    report.pdn_confirmed = !report.dtls_pairs.is_empty();
    report.peer_ips = report.candidate_peers.iter().map(|a| a.ip).collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pdn_simnet::{SimTime, Transport};

    fn frame(src: Addr, dst: Addr, payload: Bytes) -> CapturedFrame {
        CapturedFrame {
            at: SimTime::ZERO,
            src,
            dst,
            transport: Transport::Udp,
            payload,
        }
    }

    fn dtls_record() -> Bytes {
        // Minimal application-data-looking record: content type + version.
        Bytes::from_static(&[23, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xaa])
    }

    #[test]
    fn stun_then_dtls_confirms_pdn() {
        let peer_a = Addr::new(20, 0, 0, 1, 4000);
        let peer_b = Addr::new(20, 0, 0, 2, 4000);
        let stun_srv = Addr::new(30, 0, 0, 1, 3478);
        let frames = vec![
            frame(
                peer_a,
                stun_srv,
                stun::Message::binding_request([1; 12]).encode(),
            ),
            frame(
                stun_srv,
                peer_a,
                stun::Message::binding_success([1; 12], peer_a).encode(),
            ),
            frame(
                peer_a,
                peer_b,
                stun::Message::binding_request([2; 12]).encode(),
            ),
            frame(
                peer_b,
                peer_a,
                stun::Message::binding_success([2; 12], peer_a).encode(),
            ),
            frame(peer_a, peer_b, dtls_record()),
        ];
        let report = analyze_capture(&frames, &[stun_srv.ip]);
        assert!(report.pdn_confirmed);
        assert!(report.stun_binding_requests >= 2);
        assert!(report.candidate_peers.contains(&peer_b));
        assert!(!report.peer_ips.contains(&stun_srv.ip), "infra excluded");
        assert!(report.peer_ips.contains(&peer_b.ip));
    }

    #[test]
    fn stun_alone_is_not_confirmed() {
        // WebRTC-based tracking: STUN to a server, no peer DTLS (§III-D).
        let peer = Addr::new(20, 0, 0, 1, 4000);
        let tracker = Addr::new(31, 0, 0, 1, 3478);
        let frames = vec![frame(
            peer,
            tracker,
            stun::Message::binding_request([1; 12]).encode(),
        )];
        let report = analyze_capture(&frames, &[]);
        assert!(!report.pdn_confirmed);
        assert_eq!(report.stun_binding_requests, 1);
    }

    #[test]
    fn dtls_to_unknown_endpoint_not_confirmed() {
        // A DTLS flow with no preceding STUN candidates (e.g. plain HTTPS
        // misclassified) must not confirm.
        let a = Addr::new(20, 0, 0, 1, 4000);
        let b = Addr::new(20, 0, 0, 2, 4000);
        let frames = vec![frame(a, b, dtls_record())];
        let report = analyze_capture(&frames, &[]);
        assert!(!report.pdn_confirmed);
    }

    #[test]
    fn http_noise_ignored() {
        let a = Addr::new(20, 0, 0, 1, 2000);
        let cdn = Addr::new(30, 0, 0, 2, 80);
        let frames = vec![
            frame(a, cdn, Bytes::from_static(b"HTP|\x03some-request")),
            frame(cdn, a, Bytes::from_static(b"HTP|\x66payload")),
        ];
        let report = analyze_capture(&frames, &[cdn.ip]);
        assert_eq!(report.stun_binding_requests, 0);
        assert!(report.candidate_peers.is_empty());
        assert!(!report.pdn_confirmed);
    }

    #[test]
    fn empty_capture() {
        let report = analyze_capture(&[], &[]);
        assert!(!report.pdn_confirmed);
        assert!(report.peer_ips.is_empty());
    }
}

//! The signature-based static scanner (§III-C).
//!
//! Mirrors the paper's crawler: for every video-related or source-indexed
//! domain it walks subpages to depth 3 (with a page budget standing in for
//! the 10-minute timeout), matching the signature database against the
//! rendered content; APKs are unpacked into manifest keys and namespaces
//! and matched the same way.
//!
//! The hot path is built for corpus scale: signatures are compiled once
//! into a [`SignatureMatcher`] (Aho–Corasick, see [`crate::matcher`]), and
//! [`Scanner::scan`] shards the corpus across `std::thread::scope` workers.
//! Sharding is by contiguous index ranges and results are concatenated in
//! shard order, so the outcome is byte-identical for any worker count.

use crate::corpus::{AndroidApp, Ecosystem, Website};
use crate::matcher::{Scratch, SignatureMatcher};
use crate::signatures::{
    builtin_signatures, extract_api_key, match_apk, match_page, ProviderTag, Signature,
};

/// Maximum crawl depth (the paper's "within a depth of 3").
pub const MAX_DEPTH: u32 = 3;

/// Worker count used when the caller doesn't pick one: the available
/// parallelism, capped to keep shard bookkeeping sensible on huge hosts.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Splits `len` items into at most `workers` contiguous index ranges.
pub(crate) fn chunk_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// A website flagged as a potential PDN customer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteDetection {
    /// The domain.
    pub domain: String,
    /// Providers whose signatures matched.
    pub providers: Vec<ProviderTag>,
    /// API key recovered by regex extraction, if any.
    pub extracted_key: Option<String>,
    /// Tranco-style rank.
    pub rank: u32,
    /// Monthly visits, if known.
    pub monthly_visits: Option<u64>,
    /// Depth at which the first signature matched.
    pub matched_depth: u32,
}

/// An app flagged as a potential PDN customer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppDetection {
    /// Package name.
    pub package: String,
    /// Providers whose signatures matched.
    pub providers: Vec<ProviderTag>,
    /// Historical APK versions carrying the SDK.
    pub apk_versions: u32,
    /// Downloads, if listed.
    pub downloads: Option<u64>,
}

/// Scanner statistics (the §III-C funnel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Domains considered (video-related + source-indexed).
    pub domains_scanned: usize,
    /// Pages fetched across all crawls.
    pub pages_fetched: u64,
    /// APKs unpacked.
    pub apks_scanned: usize,
}

impl ScanStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.domains_scanned += other.domains_scanned;
        self.pages_fetched += other.pages_fetched;
        self.apks_scanned += other.apks_scanned;
    }
}

/// Output of a full static scan.
#[derive(Debug, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Flagged websites.
    pub sites: Vec<SiteDetection>,
    /// Flagged apps.
    pub apps: Vec<AppDetection>,
    /// Funnel statistics.
    pub stats: ScanStats,
}

/// The static scanner.
///
/// Holds the signature database *and* its compiled form: the Aho–Corasick
/// [`SignatureMatcher`] is built once in [`Scanner::new`] and reused for
/// every page and APK, so the per-page cost is a single pass over the
/// content with no allocation.
#[derive(Debug)]
pub struct Scanner {
    signatures: Vec<Signature>,
    matcher: SignatureMatcher,
}

impl Default for Scanner {
    fn default() -> Self {
        Self::new()
    }
}

impl Scanner {
    /// Creates a scanner with the built-in signature database.
    pub fn new() -> Self {
        let signatures = builtin_signatures();
        let matcher = SignatureMatcher::new(&signatures);
        Scanner {
            signatures,
            matcher,
        }
    }

    /// The signature database this scanner was compiled from.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Crawls one website; returns a detection if any signature matches
    /// within the depth limit.
    ///
    /// Convenience wrapper over [`Scanner::scan_site_in`] that allocates a
    /// fresh [`Scratch`]; the shard loop reuses one scratch per worker.
    pub fn scan_site(&self, site: &Website, stats: &mut ScanStats) -> Option<SiteDetection> {
        self.scan_site_in(&mut Scratch::default(), site, stats)
    }

    /// [`Scanner::scan_site`] with caller-provided matcher scratch.
    pub fn scan_site_in(
        &self,
        scratch: &mut Scratch,
        site: &Website,
        stats: &mut ScanStats,
    ) -> Option<SiteDetection> {
        // The paper's filter: category engines say video, or the domain
        // came from the source-code search engines.
        if !site.video_category && !site.in_source_index {
            return None;
        }
        // The crawler only descends when the homepage has a <video> tag
        // (or the site is source-indexed).
        let homepage = site.page_content(0);
        stats.pages_fetched += 1;
        let descend = homepage.contains("<video") || site.in_source_index;
        let mut best: Option<(u32, Vec<ProviderTag>, Option<String>)> = None;
        let depths: &[u32] = if descend { &[0, 1, 2, 3] } else { &[0] };
        for &d in depths {
            // Borrow the already-fetched homepage at depth 0 instead of
            // cloning it; deeper pages are fetched into `fetched`.
            let fetched;
            let content: &str = if d == 0 {
                &homepage
            } else {
                stats.pages_fetched += 1;
                fetched = site.page_content(d);
                &fetched
            };
            let hits = self.matcher.match_page_in(scratch, content);
            if !hits.is_empty() {
                let key = extract_api_key(content);
                best = Some((d, hits, key));
                break;
            }
        }
        let (matched_depth, providers, extracted_key) = best?;
        Some(SiteDetection {
            domain: site.domain.clone(),
            providers,
            extracted_key,
            rank: site.rank,
            monthly_visits: site.monthly_visits,
            matched_depth,
        })
    }

    /// Unpacks one APK and matches signatures.
    pub fn scan_app(&self, app: &AndroidApp, stats: &mut ScanStats) -> Option<AppDetection> {
        stats.apks_scanned += 1;
        let providers = self.matcher.match_apk(&app.manifest_keys, &app.namespaces);
        if providers.is_empty() {
            return None;
        }
        Some(AppDetection {
            package: app.package.clone(),
            providers,
            apk_versions: app.apk_versions,
            downloads: app.downloads,
        })
    }

    /// Scans the whole ecosystem, sharded across [`default_workers`]
    /// threads. Equivalent to `scan_with_workers(eco, default_workers())`.
    pub fn scan(&self, eco: &Ecosystem) -> ScanOutcome {
        self.scan_with_workers(eco, default_workers())
    }

    /// Scans the whole ecosystem with an explicit worker count.
    ///
    /// Websites and apps are partitioned into contiguous index shards, one
    /// per worker; each worker produces its shard's detections plus a
    /// private [`ScanStats`], and the shards are concatenated (and stats
    /// summed) in shard order at join. Because every site/app is scanned
    /// independently, the result is identical for any `workers` value.
    pub fn scan_with_workers(&self, eco: &Ecosystem, workers: usize) -> ScanOutcome {
        if workers <= 1 {
            return self.scan_serial(eco);
        }
        let site_chunks = chunk_ranges(eco.websites.len(), workers);
        let app_chunks = chunk_ranges(eco.apps.len(), workers);
        let shards = site_chunks.len().max(app_chunks.len());
        let mut results: Vec<(Vec<SiteDetection>, Vec<AppDetection>, ScanStats)> =
            Vec::with_capacity(shards);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|i| {
                    let sites = site_chunks
                        .get(i)
                        .map_or(&[][..], |r| &eco.websites[r.clone()]);
                    let apps = app_chunks.get(i).map_or(&[][..], |r| &eco.apps[r.clone()]);
                    s.spawn(move || self.scan_shard(sites, apps))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("scan worker panicked"));
            }
        });
        let mut out = ScanOutcome {
            sites: Vec::new(),
            apps: Vec::new(),
            stats: ScanStats::default(),
        };
        for (sites, apps, stats) in results {
            out.sites.extend(sites);
            out.apps.extend(apps);
            out.stats.merge(&stats);
        }
        out
    }

    /// Scans one shard: a slice of the website corpus plus a slice of the
    /// app corpus, with shard-local stats.
    fn scan_shard(
        &self,
        websites: &[Website],
        apps: &[AndroidApp],
    ) -> (Vec<SiteDetection>, Vec<AppDetection>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut scratch = Scratch::default();
        let mut site_dets = Vec::new();
        for site in websites {
            if site.video_category || site.in_source_index {
                stats.domains_scanned += 1;
            }
            if let Some(d) = self.scan_site_in(&mut scratch, site, &mut stats) {
                site_dets.push(d);
            }
        }
        let mut app_dets = Vec::new();
        for app in apps {
            if let Some(d) = self.scan_app(app, &mut stats) {
                app_dets.push(d);
            }
        }
        (site_dets, app_dets, stats)
    }

    fn scan_serial(&self, eco: &Ecosystem) -> ScanOutcome {
        let (sites, apps, stats) = self.scan_shard(&eco.websites, &eco.apps);
        ScanOutcome { sites, apps, stats }
    }

    /// Serial scan through the naive reference matcher
    /// ([`match_page`]/[`match_apk`], O(signatures × content) with per-page
    /// lowercasing) — the baseline the `scan_throughput` bench measures the
    /// compiled + sharded hot path against. Must produce the same outcome
    /// as [`Scanner::scan`].
    pub fn scan_naive(&self, eco: &Ecosystem) -> ScanOutcome {
        let mut stats = ScanStats::default();
        let mut sites = Vec::new();
        for site in &eco.websites {
            if site.video_category || site.in_source_index {
                stats.domains_scanned += 1;
            }
            if !site.video_category && !site.in_source_index {
                continue;
            }
            let homepage = site.page_content(0);
            stats.pages_fetched += 1;
            let descend = homepage.contains("<video") || site.in_source_index;
            let depths: &[u32] = if descend { &[0, 1, 2, 3] } else { &[0] };
            let mut best = None;
            for &d in depths {
                let fetched;
                let content: &str = if d == 0 {
                    &homepage
                } else {
                    stats.pages_fetched += 1;
                    fetched = site.page_content(d);
                    &fetched
                };
                let hits = match_page(&self.signatures, content);
                if !hits.is_empty() {
                    best = Some((d, hits, extract_api_key(content)));
                    break;
                }
            }
            if let Some((matched_depth, providers, extracted_key)) = best {
                sites.push(SiteDetection {
                    domain: site.domain.clone(),
                    providers,
                    extracted_key,
                    rank: site.rank,
                    monthly_visits: site.monthly_visits,
                    matched_depth,
                });
            }
        }
        let mut apps = Vec::new();
        for app in &eco.apps {
            stats.apks_scanned += 1;
            let providers = match_apk(&self.signatures, &app.manifest_keys, &app.namespaces);
            if !providers.is_empty() {
                apps.push(AppDetection {
                    package: app.package.clone(),
                    providers,
                    apk_versions: app.apk_versions,
                    downloads: app.downloads,
                });
            }
        }
        ScanOutcome { sites, apps, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Plant, TABLE1_PLAN};
    use pdn_simnet::SimRng;

    fn outcome() -> (crate::corpus::Ecosystem, ScanOutcome) {
        let mut rng = SimRng::seed(3);
        let eco = generate(
            CorpusConfig {
                website_haystack: 500,
                app_haystack: 500,
                video_fraction: 0.4,
            },
            &mut rng,
        );
        let out = Scanner::new().scan(&eco);
        (eco, out)
    }

    #[test]
    fn finds_exactly_the_visible_public_plants() {
        let (eco, out) = outcome();
        for (provider, pot_sites, ..) in TABLE1_PLAN {
            let found = out
                .sites
                .iter()
                .filter(|s| s.providers.contains(provider))
                .count();
            // Every planted public site is statically visible in the
            // default corpus (depth ≤ 3, not dynamic).
            assert_eq!(found, *pot_sites, "{provider}");
        }
        // No haystack false positives.
        for s in &out.sites {
            let truth = eco.websites.iter().find(|w| w.domain == s.domain).unwrap();
            assert!(truth.plant.is_some(), "false positive on {}", s.domain);
        }
    }

    #[test]
    fn app_scan_matches_table1_potentials() {
        let (_, out) = outcome();
        for (provider, _, _, pot_apps, _, pot_apks, _) in TABLE1_PLAN {
            let (apps, versions) = out
                .apps
                .iter()
                .filter(|a| a.providers.contains(provider))
                .fold((0usize, 0u32), |(n, v), a| (n + 1, v + a.apk_versions));
            assert_eq!(apps, *pot_apps, "{provider} apps");
            assert_eq!(versions, *pot_apks, "{provider} APKs");
        }
    }

    #[test]
    fn extracts_exactly_the_unobfuscated_keys() {
        let (eco, out) = outcome();
        let extracted: Vec<&SiteDetection> = out
            .sites
            .iter()
            .filter(|s| s.extracted_key.is_some())
            .collect();
        assert_eq!(extracted.len(), 44, "§IV-B: 44 keys extracted");
        for d in extracted {
            let truth = eco.websites.iter().find(|w| w.domain == d.domain).unwrap();
            let Some(Plant::Public { api_key, .. }) = &truth.plant else {
                panic!("extracted key from non-public site");
            };
            assert_eq!(d.extracted_key.as_ref(), Some(api_key));
        }
    }

    #[test]
    fn generic_webrtc_candidates_found() {
        let (_, out) = outcome();
        let generic = out
            .sites
            .iter()
            .filter(|s| s.providers.contains(&ProviderTag::GenericWebRtc))
            .count();
        // 10 private + 2 adult + 3 tracking + 42 + 328 = 385 (§III-D).
        assert_eq!(generic, 385);
    }

    #[test]
    fn parallel_scan_is_deterministic_across_worker_counts() {
        let scanner = Scanner::new();
        for seed in [3u64, 7, 2024] {
            let mut rng = SimRng::seed(seed);
            let eco = generate(
                CorpusConfig {
                    website_haystack: 300,
                    app_haystack: 200,
                    video_fraction: 0.4,
                },
                &mut rng,
            );
            let serial = scanner.scan_with_workers(&eco, 1);
            for workers in [2usize, 8] {
                let parallel = scanner.scan_with_workers(&eco, workers);
                assert_eq!(serial, parallel, "seed {seed}, {workers} workers");
            }
        }
    }

    #[test]
    fn naive_scan_agrees_with_hot_path() {
        let (eco, out) = outcome();
        let naive = Scanner::new().scan_naive(&eco);
        assert_eq!(naive, out);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, workers) in [(0usize, 4usize), (1, 4), (7, 3), (8, 8), (10, 16), (100, 7)] {
            let ranges = chunk_ranges(len, workers);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, len, "len {len}, workers {workers}");
            assert!(ranges.len() <= workers.max(1));
        }
    }

    #[test]
    fn non_video_unindexed_sites_skipped() {
        let scanner = Scanner::new();
        let mut stats = ScanStats::default();
        let site = crate::corpus::Website {
            domain: "news.example".into(),
            rank: 10,
            video_category: false,
            in_source_index: false,
            monthly_visits: None,
            plant: None,
            visibility: crate::corpus::Visibility {
                depth: 0,
                dynamic: false,
            },
            trigger: crate::corpus::Trigger::Always,
        };
        assert!(scanner.scan_site(&site, &mut stats).is_none());
        assert_eq!(stats.pages_fetched, 0);
    }

    #[test]
    fn dynamic_plants_evade_static_scan() {
        let scanner = Scanner::new();
        let mut stats = ScanStats::default();
        let site = crate::corpus::Website {
            domain: "dyn.example".into(),
            rank: 10,
            video_category: true,
            in_source_index: false,
            monthly_visits: None,
            plant: Some(Plant::Public {
                provider: ProviderTag::Peer5,
                api_key: "k".into(),
                key_obfuscated: false,
                key_expired: false,
                allowlist_enabled: false,
            }),
            visibility: crate::corpus::Visibility {
                depth: 1,
                dynamic: true,
            },
            trigger: crate::corpus::Trigger::Always,
        };
        assert!(
            scanner.scan_site(&site, &mut stats).is_none(),
            "runtime-loaded signatures are invisible statically"
        );
    }
}

//! The signature-based static scanner (§III-C).
//!
//! Mirrors the paper's crawler: for every video-related or source-indexed
//! domain it walks subpages to depth 3 (with a page budget standing in for
//! the 10-minute timeout), matching the signature database against the
//! rendered content; APKs are unpacked into manifest keys and namespaces
//! and matched the same way.

use crate::corpus::{AndroidApp, Ecosystem, Website};
use crate::signatures::{
    builtin_signatures, extract_api_key, match_apk, match_page, ProviderTag, Signature,
};

/// Maximum crawl depth (the paper's "within a depth of 3").
pub const MAX_DEPTH: u32 = 3;

/// A website flagged as a potential PDN customer.
#[derive(Debug, Clone)]
pub struct SiteDetection {
    /// The domain.
    pub domain: String,
    /// Providers whose signatures matched.
    pub providers: Vec<ProviderTag>,
    /// API key recovered by regex extraction, if any.
    pub extracted_key: Option<String>,
    /// Tranco-style rank.
    pub rank: u32,
    /// Monthly visits, if known.
    pub monthly_visits: Option<u64>,
    /// Depth at which the first signature matched.
    pub matched_depth: u32,
}

/// An app flagged as a potential PDN customer.
#[derive(Debug, Clone)]
pub struct AppDetection {
    /// Package name.
    pub package: String,
    /// Providers whose signatures matched.
    pub providers: Vec<ProviderTag>,
    /// Historical APK versions carrying the SDK.
    pub apk_versions: u32,
    /// Downloads, if listed.
    pub downloads: Option<u64>,
}

/// Scanner statistics (the §III-C funnel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Domains considered (video-related + source-indexed).
    pub domains_scanned: usize,
    /// Pages fetched across all crawls.
    pub pages_fetched: u64,
    /// APKs unpacked.
    pub apks_scanned: usize,
}

/// Output of a full static scan.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Flagged websites.
    pub sites: Vec<SiteDetection>,
    /// Flagged apps.
    pub apps: Vec<AppDetection>,
    /// Funnel statistics.
    pub stats: ScanStats,
}

/// The static scanner.
#[derive(Debug)]
pub struct Scanner {
    signatures: Vec<Signature>,
}

impl Default for Scanner {
    fn default() -> Self {
        Self::new()
    }
}

impl Scanner {
    /// Creates a scanner with the built-in signature database.
    pub fn new() -> Self {
        Scanner {
            signatures: builtin_signatures(),
        }
    }

    /// Crawls one website; returns a detection if any signature matches
    /// within the depth limit.
    pub fn scan_site(&self, site: &Website, stats: &mut ScanStats) -> Option<SiteDetection> {
        // The paper's filter: category engines say video, or the domain
        // came from the source-code search engines.
        if !site.video_category && !site.in_source_index {
            return None;
        }
        // The crawler only descends when the homepage has a <video> tag
        // (or the site is source-indexed).
        let homepage = site.page_content(0);
        stats.pages_fetched += 1;
        let descend = homepage.contains("<video") || site.in_source_index;
        let mut best: Option<(u32, Vec<ProviderTag>, Option<String>)> = None;
        let depths: &[u32] = if descend { &[0, 1, 2, 3] } else { &[0] };
        for &d in depths {
            let content = if d == 0 {
                homepage.clone()
            } else {
                stats.pages_fetched += 1;
                site.page_content(d)
            };
            let hits = match_page(&self.signatures, &content);
            if !hits.is_empty() {
                let key = extract_api_key(&content);
                best = Some((d, hits, key));
                break;
            }
        }
        let (matched_depth, providers, extracted_key) = best?;
        Some(SiteDetection {
            domain: site.domain.clone(),
            providers,
            extracted_key,
            rank: site.rank,
            monthly_visits: site.monthly_visits,
            matched_depth,
        })
    }

    /// Unpacks one APK and matches signatures.
    pub fn scan_app(&self, app: &AndroidApp, stats: &mut ScanStats) -> Option<AppDetection> {
        stats.apks_scanned += 1;
        let providers = match_apk(&self.signatures, &app.manifest_keys, &app.namespaces);
        if providers.is_empty() {
            return None;
        }
        Some(AppDetection {
            package: app.package.clone(),
            providers,
            apk_versions: app.apk_versions,
            downloads: app.downloads,
        })
    }

    /// Scans the whole ecosystem.
    pub fn scan(&self, eco: &Ecosystem) -> ScanOutcome {
        let mut stats = ScanStats::default();
        let mut sites = Vec::new();
        for site in &eco.websites {
            if site.video_category || site.in_source_index {
                stats.domains_scanned += 1;
            }
            if let Some(d) = self.scan_site(site, &mut stats) {
                sites.push(d);
            }
        }
        let mut apps = Vec::new();
        for app in &eco.apps {
            if let Some(d) = self.scan_app(app, &mut stats) {
                apps.push(d);
            }
        }
        ScanOutcome { sites, apps, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Plant, TABLE1_PLAN};
    use pdn_simnet::SimRng;

    fn outcome() -> (crate::corpus::Ecosystem, ScanOutcome) {
        let mut rng = SimRng::seed(3);
        let eco = generate(
            CorpusConfig {
                website_haystack: 500,
                app_haystack: 500,
                video_fraction: 0.4,
            },
            &mut rng,
        );
        let out = Scanner::new().scan(&eco);
        (eco, out)
    }

    #[test]
    fn finds_exactly_the_visible_public_plants() {
        let (eco, out) = outcome();
        for (provider, pot_sites, ..) in TABLE1_PLAN {
            let found = out
                .sites
                .iter()
                .filter(|s| s.providers.contains(provider))
                .count();
            // Every planted public site is statically visible in the
            // default corpus (depth ≤ 3, not dynamic).
            assert_eq!(found, *pot_sites, "{provider}");
        }
        // No haystack false positives.
        for s in &out.sites {
            let truth = eco.websites.iter().find(|w| w.domain == s.domain).unwrap();
            assert!(truth.plant.is_some(), "false positive on {}", s.domain);
        }
    }

    #[test]
    fn app_scan_matches_table1_potentials() {
        let (_, out) = outcome();
        for (provider, _, _, pot_apps, _, pot_apks, _) in TABLE1_PLAN {
            let (apps, versions) = out
                .apps
                .iter()
                .filter(|a| a.providers.contains(provider))
                .fold((0usize, 0u32), |(n, v), a| (n + 1, v + a.apk_versions));
            assert_eq!(apps, *pot_apps, "{provider} apps");
            assert_eq!(versions, *pot_apks, "{provider} APKs");
        }
    }

    #[test]
    fn extracts_exactly_the_unobfuscated_keys() {
        let (eco, out) = outcome();
        let extracted: Vec<&SiteDetection> =
            out.sites.iter().filter(|s| s.extracted_key.is_some()).collect();
        assert_eq!(extracted.len(), 44, "§IV-B: 44 keys extracted");
        for d in extracted {
            let truth = eco.websites.iter().find(|w| w.domain == d.domain).unwrap();
            let Some(Plant::Public { api_key, .. }) = &truth.plant else {
                panic!("extracted key from non-public site");
            };
            assert_eq!(d.extracted_key.as_ref(), Some(api_key));
        }
    }

    #[test]
    fn generic_webrtc_candidates_found() {
        let (_, out) = outcome();
        let generic = out
            .sites
            .iter()
            .filter(|s| s.providers.contains(&ProviderTag::GenericWebRtc))
            .count();
        // 10 private + 2 adult + 3 tracking + 42 + 328 = 385 (§III-D).
        assert_eq!(generic, 385);
    }

    #[test]
    fn non_video_unindexed_sites_skipped() {
        let scanner = Scanner::new();
        let mut stats = ScanStats::default();
        let site = crate::corpus::Website {
            domain: "news.example".into(),
            rank: 10,
            video_category: false,
            in_source_index: false,
            monthly_visits: None,
            plant: None,
            visibility: crate::corpus::Visibility { depth: 0, dynamic: false },
            trigger: crate::corpus::Trigger::Always,
        };
        assert!(scanner.scan_site(&site, &mut stats).is_none());
        assert_eq!(stats.pages_fetched, 0);
    }

    #[test]
    fn dynamic_plants_evade_static_scan() {
        let scanner = Scanner::new();
        let mut stats = ScanStats::default();
        let site = crate::corpus::Website {
            domain: "dyn.example".into(),
            rank: 10,
            video_category: true,
            in_source_index: false,
            monthly_visits: None,
            plant: Some(Plant::Public {
                provider: ProviderTag::Peer5,
                api_key: "k".into(),
                key_obfuscated: false,
                key_expired: false,
                allowlist_enabled: false,
            }),
            visibility: crate::corpus::Visibility { depth: 1, dynamic: true },
            trigger: crate::corpus::Trigger::Always,
        };
        assert!(
            scanner.scan_site(&site, &mut stats).is_none(),
            "runtime-loaded signatures are invisible statically"
        );
    }
}

//! Dynamic analysis: drive a watch session and sniff for PDN traffic.
//!
//! For each potential customer the paper "randomly selected 3 video links
//! and watched them for 15 minutes so as to capture the traffic" (§III-C).
//! Here a watch session against a planted site synthesizes the capture the
//! analyzer's tcpdump would have produced — using the *real* STUN/DTLS wire
//! encoders, so [`crate::traffic::analyze_capture`] exercises the same
//! parsing path as against live `pdn-provider` worlds — and the confirm
//! verdict is whatever the capture analysis says.

use bytes::Bytes;
use pdn_simnet::{Addr, CapturedFrame, SimRng, SimTime, Transport};
use pdn_webrtc::stun;

use crate::corpus::{Plant, Trigger, WebRtcUse, Website};
use crate::traffic::{analyze_capture, TrafficReport};

/// A vantage point the dynamic analysis can run from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vantage {
    /// Country code of the analysis host.
    pub country: &'static str,
}

/// The paper's vantage set: a US analysis server plus a China vantage
/// (needed for Douyu-style geo-restricted services).
pub fn paper_vantages() -> Vec<Vantage> {
    vec![Vantage { country: "US" }, Vantage { country: "CN" }]
}

/// Whether the plant produces traffic from any of `vantages`.
pub fn triggers(site: &Website, vantages: &[Vantage]) -> bool {
    match site.trigger {
        Trigger::Always => true,
        Trigger::GeoRestricted(c) => vantages.iter().any(|v| v.country == c),
        Trigger::SubscriptionRequired | Trigger::SubpageOnly => false,
    }
}

/// Outcome of a dynamic session against one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicOutcome {
    /// The capture-analysis report.
    pub report: TrafficReport,
    /// Classification of what the session observed.
    pub verdict: DynamicVerdict,
}

/// What the dynamic analysis concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicVerdict {
    /// STUN + DTLS between candidate peers: a confirmed PDN customer.
    PdnConfirmed,
    /// WebRTC traffic relayed via TURN (the adult platforms of §III-D).
    TurnRelayed,
    /// WebRTC APIs used for tracking only (STUN, no peer DTLS).
    TrackingOnly,
    /// No PDN-shaped traffic observed.
    NoTraffic,
}

/// Runs watch sessions for a batch of independent candidates, sharded
/// across `workers` threads (same contiguous-index sharding as
/// [`crate::scanner::Scanner::scan_with_workers`]).
///
/// Each candidate's RNG is derived from `base_seed` and its index, so the
/// outcomes — including the synthesized addresses — are identical for any
/// worker count, and results come back in input order.
pub fn watch_sessions(
    sites: &[&Website],
    vantages: &[Vantage],
    base_seed: u64,
    workers: usize,
) -> Vec<DynamicOutcome> {
    let run_one = |(idx, site): (usize, &&Website)| {
        let mut rng = SimRng::seed(session_seed(base_seed, idx));
        watch_session(site, vantages, &mut rng)
    };
    if workers <= 1 || sites.len() <= 1 {
        return sites.iter().enumerate().map(run_one).collect();
    }
    let chunks = crate::scanner::chunk_ranges(sites.len(), workers);
    let mut out = Vec::with_capacity(sites.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let start = r.start;
                let shard = &sites[r.clone()];
                s.spawn(move || {
                    shard
                        .iter()
                        .enumerate()
                        .map(|(i, site)| run_one((start + i, site)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("watch worker panicked"));
        }
    });
    out
}

/// Mixes `base_seed` with a candidate index into an independent stream
/// seed (SplitMix64-style finalizer, so neighbouring indices decorrelate).
fn session_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one simulated watch session against `site`.
pub fn watch_session(site: &Website, vantages: &[Vantage], rng: &mut SimRng) -> DynamicOutcome {
    let frames = synthesize_session_capture(site, vantages, rng);
    let stun_server = Addr::new(30, 0, 0, 1, 3478);
    let turn_server = Addr::new(30, 0, 0, 2, 3478);
    let report = analyze_capture(&frames, &[stun_server.ip, turn_server.ip]);
    // Classification is purely capture-driven: peer-pair DTLS confirms a
    // PDN; DTLS without a candidate pair (every flow terminates at the
    // relay) is TURN-relayed streaming; bare STUN is tracking.
    let verdict = if report.pdn_confirmed {
        DynamicVerdict::PdnConfirmed
    } else if report.dtls_frames > 0 && report.stun_binding_requests > 0 {
        DynamicVerdict::TurnRelayed
    } else if report.stun_binding_requests > 0 {
        DynamicVerdict::TrackingOnly
    } else {
        DynamicVerdict::NoTraffic
    };
    DynamicOutcome { report, verdict }
}

/// Builds the frames a 15-minute watch of `site` would put on the wire.
fn synthesize_session_capture(
    site: &Website,
    vantages: &[Vantage],
    rng: &mut SimRng,
) -> Vec<CapturedFrame> {
    let mut frames = Vec::new();
    let us = Addr::new(
        11,
        200,
        rng.range(0..250u16) as u8,
        rng.range(1..250u16) as u8,
        4000 + rng.range(0..1000u16),
    );
    let cdn = Addr::new(30, 0, 0, 9, 80);
    let stun_server = Addr::new(30, 0, 0, 1, 3478);
    let turn_server = Addr::new(30, 0, 0, 2, 3478);
    let mut t = 0u64;
    let mut push = |frames: &mut Vec<CapturedFrame>, src, dst, payload: Bytes| {
        frames.push(CapturedFrame {
            at: SimTime::from_millis(t),
            src,
            dst,
            transport: Transport::Udp,
            payload,
        });
        t += 50;
    };

    // Ordinary playback traffic is always present.
    push(
        &mut frames,
        us,
        cdn,
        Bytes::from_static(b"HTP|\x03get-manifest"),
    );
    push(
        &mut frames,
        cdn,
        us,
        Bytes::from_static(b"HTP|\x65#EXTM3U..."),
    );

    if !triggers(site, vantages) {
        return frames;
    }

    match &site.plant {
        None => frames,
        Some(Plant::WebRtcOther(WebRtcUse::Tracking)) => {
            // STUN binding to learn the client's IP; no peer connection.
            let txid = txid(rng);
            push(
                &mut frames,
                us,
                stun_server,
                stun::Message::binding_request(txid).encode(),
            );
            push(
                &mut frames,
                stun_server,
                us,
                stun::Message::binding_success(txid, us).encode(),
            );
            frames
        }
        Some(Plant::WebRtcOther(WebRtcUse::Unknown)) => frames,
        Some(Plant::WebRtcOther(WebRtcUse::TurnRelayed)) => {
            // Allocation + relayed DTLS: the peers only ever talk to the
            // relay, so the "pair" is client <-> relayed address.
            let relayed = Addr::from_ip(turn_server.ip, 49_152);
            let peer_via_relay = Addr::new(30, 0, 0, 2, 49_153);
            let txid1 = txid(rng);
            push(
                &mut frames,
                us,
                turn_server,
                stun::Message::binding_request(txid1).encode(),
            );
            push(
                &mut frames,
                turn_server,
                us,
                stun::Message::binding_success(txid1, relayed).encode(),
            );
            push(&mut frames, us, peer_via_relay, dtls_handshake_bytes());
            push(&mut frames, peer_via_relay, us, dtls_handshake_bytes());
            frames
        }
        Some(Plant::Public { .. }) | Some(Plant::Private { .. }) => {
            // Full PDN session: srflx gathering, checks with a remote peer,
            // DTLS handshake, then media records.
            let peer = Addr::new(
                12,
                rng.range(0..200u16) as u8,
                rng.range(0..250u16) as u8,
                rng.range(1..250u16) as u8,
                40_000 + rng.range(0..1000u16),
            );
            let t1 = txid(rng);
            push(
                &mut frames,
                us,
                stun_server,
                stun::Message::binding_request(t1).encode(),
            );
            push(
                &mut frames,
                stun_server,
                us,
                stun::Message::binding_success(t1, us).encode(),
            );
            let t2 = txid(rng);
            push(
                &mut frames,
                us,
                peer,
                stun::Message::binding_request(t2).encode(),
            );
            push(
                &mut frames,
                peer,
                us,
                stun::Message::binding_success(t2, us).encode(),
            );
            push(&mut frames, us, peer, dtls_handshake_bytes());
            push(&mut frames, peer, us, dtls_handshake_bytes());
            for _ in 0..5 {
                push(&mut frames, peer, us, dtls_appdata_bytes(rng));
            }
            frames
        }
    }
}

fn txid(rng: &mut SimRng) -> [u8; 12] {
    let mut id = [0u8; 12];
    let a = rng.next_u64().to_le_bytes();
    id[..8].copy_from_slice(&a);
    id
}

fn dtls_handshake_bytes() -> Bytes {
    Bytes::from_static(&[22, 0xfe, 0xfd, 1, 0, 0, 0])
}

fn dtls_appdata_bytes(rng: &mut SimRng) -> Bytes {
    let mut v = vec![23, 0xfe, 0xfd];
    for _ in 0..32 {
        v.push(rng.range(0..=255u16) as u8);
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Visibility;
    use crate::signatures::ProviderTag;

    fn site(plant: Option<Plant>, trigger: Trigger) -> Website {
        Website {
            domain: "test.example".into(),
            rank: 100,
            video_category: true,
            in_source_index: false,
            monthly_visits: None,
            plant,
            visibility: Visibility {
                depth: 0,
                dynamic: false,
            },
            trigger,
        }
    }

    fn public_plant() -> Plant {
        Plant::Public {
            provider: ProviderTag::Peer5,
            api_key: "k".into(),
            key_obfuscated: false,
            key_expired: false,
            allowlist_enabled: false,
        }
    }

    #[test]
    fn triggered_public_site_confirms() {
        let mut rng = SimRng::seed(1);
        let s = site(Some(public_plant()), Trigger::Always);
        let out = watch_session(&s, &paper_vantages(), &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::PdnConfirmed);
        assert!(out.report.stun_binding_requests >= 2);
        assert!(!out.report.peer_ips.is_empty());
    }

    #[test]
    fn geo_restriction_honoured() {
        let mut rng = SimRng::seed(2);
        let s = site(Some(public_plant()), Trigger::GeoRestricted("CN"));
        // With the CN vantage: confirmed.
        let out = watch_session(&s, &paper_vantages(), &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::PdnConfirmed);
        // US-only vantage: nothing.
        let out = watch_session(&s, &[Vantage { country: "US" }], &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::NoTraffic);
    }

    #[test]
    fn subscription_gate_blocks() {
        let mut rng = SimRng::seed(3);
        let s = site(Some(public_plant()), Trigger::SubscriptionRequired);
        let out = watch_session(&s, &paper_vantages(), &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::NoTraffic);
    }

    #[test]
    fn tracking_classified_separately() {
        let mut rng = SimRng::seed(4);
        let s = site(
            Some(Plant::WebRtcOther(WebRtcUse::Tracking)),
            Trigger::Always,
        );
        let out = watch_session(&s, &paper_vantages(), &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::TrackingOnly);
    }

    #[test]
    fn turn_relay_classified_separately() {
        let mut rng = SimRng::seed(5);
        let s = site(
            Some(Plant::WebRtcOther(WebRtcUse::TurnRelayed)),
            Trigger::Always,
        );
        let out = watch_session(&s, &paper_vantages(), &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::TurnRelayed);
    }

    #[test]
    fn batched_sessions_identical_for_any_worker_count() {
        // A mixed batch: public plants, tracking, TURN, plain.
        let sites: Vec<Website> = vec![
            site(Some(public_plant()), Trigger::Always),
            site(
                Some(Plant::WebRtcOther(WebRtcUse::Tracking)),
                Trigger::Always,
            ),
            site(
                Some(Plant::WebRtcOther(WebRtcUse::TurnRelayed)),
                Trigger::Always,
            ),
            site(None, Trigger::Always),
            site(Some(public_plant()), Trigger::GeoRestricted("CN")),
            site(Some(public_plant()), Trigger::SubscriptionRequired),
            site(Some(public_plant()), Trigger::Always),
        ];
        let refs: Vec<&Website> = sites.iter().collect();
        let vantages = paper_vantages();
        let serial = watch_sessions(&refs, &vantages, 42, 1);
        for workers in [2usize, 8] {
            let parallel = watch_sessions(&refs, &vantages, 42, workers);
            assert_eq!(serial, parallel, "{workers} workers");
        }
        assert_eq!(serial[0].verdict, DynamicVerdict::PdnConfirmed);
        assert_eq!(serial[1].verdict, DynamicVerdict::TrackingOnly);
        assert_eq!(serial[2].verdict, DynamicVerdict::TurnRelayed);
        assert_eq!(serial[3].verdict, DynamicVerdict::NoTraffic);
    }

    #[test]
    fn plain_site_shows_no_traffic() {
        let mut rng = SimRng::seed(6);
        let s = site(None, Trigger::Always);
        let out = watch_session(&s, &paper_vantages(), &mut rng);
        assert_eq!(out.verdict, DynamicVerdict::NoTraffic);
    }
}

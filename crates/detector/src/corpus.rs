//! Synthetic ecosystem corpus.
//!
//! The paper crawls the Tranco top-300K (filtered to 68,713 video-related
//! domains plus 44 source-search hits) and samples 1.5M Androzoo apps
//! (§III-C). Neither corpus can be fetched here, so this module generates a
//! synthetic ecosystem with the same *ground truth structure*: planted PDN
//! customers with realistic embedding (signature depth, obfuscated keys,
//! dynamic loading), trigger constraints (geo restrictions, subscriptions,
//! subpage-only), popularity metadata, and a configurable haystack of
//! innocuous sites and apps. The detector pipeline then has to *recover*
//! the plants — Tables I–IV are its output, not a transcription.
//!
//! The named, publicly-reported customers of Tables II–IV are seeded
//! verbatim (domains, providers, popularity) since they are published
//! findings; which of them the pipeline confirms is up to the pipeline.

use pdn_simnet::SimRng;

use crate::signatures::ProviderTag;

/// When a planted PDN actually produces traffic (§III-C "challenges in
/// triggering the service").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Triggers from any vantage.
    Always,
    /// Only triggers from a vantage in this country (e.g. Douyu: CN).
    GeoRestricted(&'static str),
    /// Requires a paid subscription the analyzer does not have.
    SubscriptionRequired,
    /// Only enabled on subpages the dynamic driver misses.
    SubpageOnly,
}

/// What a generic-WebRTC site actually uses WebRTC for (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WebRtcUse {
    /// TURN-relayed streaming (the two adult platforms).
    TurnRelayed,
    /// Web tracking via WebRTC APIs.
    Tracking,
    /// Could not be triggered / unknown.
    Unknown,
}

/// Ground truth planted on a website or app.
#[derive(Debug, Clone)]
pub enum Plant {
    /// Customer of a public PDN provider.
    Public {
        /// Which provider.
        provider: ProviderTag,
        /// The embedded API key.
        api_key: String,
        /// Key unreadable by regex extraction (obfuscated / runtime-loaded).
        key_obfuscated: bool,
        /// Key expired at the provider.
        key_expired: bool,
        /// Customer enabled the domain allowlist.
        allowlist_enabled: bool,
    },
    /// Proprietary private PDN with its own signaling server.
    Private {
        /// The signaling endpoint (Table IV column 2).
        server_domain: String,
    },
    /// Generic WebRTC usage that is not a public-provider PDN.
    WebRtcOther(WebRtcUse),
}

/// How visible the planted SDK is to a static crawler.
#[derive(Debug, Clone, Copy)]
pub struct Visibility {
    /// Page depth at which the signature appears (crawler goes to 3).
    pub depth: u32,
    /// Signature only materializes at runtime (static scan misses it).
    pub dynamic: bool,
}

/// A website in the corpus.
#[derive(Debug, Clone)]
pub struct Website {
    /// Domain name.
    pub domain: String,
    /// Tranco-style rank (1 = most popular).
    pub rank: u32,
    /// Categorized as video-related by the category engines.
    pub video_category: bool,
    /// Indexed by the source-code search engines (NerdyData/PublicWWW).
    pub in_source_index: bool,
    /// Monthly visits (SimilarWeb), when known.
    pub monthly_visits: Option<u64>,
    /// Planted PDN, if any.
    pub plant: Option<Plant>,
    /// Visibility of the plant.
    pub visibility: Visibility,
    /// Trigger condition of the plant.
    pub trigger: Trigger,
}

impl Website {
    /// Renders the page content at `depth` (lazy generation: only crawled
    /// pages materialize). The signature snippet appears at the plant's
    /// depth, near the end of the document as on real sites; the rest is
    /// innocuous video-site boilerplate at a realistic page weight
    /// (Tranco-ranked video pages average tens of kilobytes of markup).
    pub fn page_content(&self, depth: u32) -> String {
        // Deterministic size in [12 KiB, 24 KiB), varying per site/depth.
        let lines = 128
            + (self.rank as usize)
                .wrapping_mul(31)
                .wrapping_add(depth as usize)
                % 128;
        let mut html = String::with_capacity(lines * 100 + 512);
        html.push_str("<html><head><title>");
        html.push_str(&self.domain);
        html.push_str("</title></head><body>");
        if self.video_category && depth == 0 {
            html.push_str("<video src=\"stream.m3u8\" controls></video>");
        }
        for i in 0..lines {
            html.push_str("<div class=\"row\"><a href=\"/watch?v=");
            push_decimal(&mut html, (i * 7919 + depth as usize) % 1_000_000);
            html.push_str("\">Episode listing — full catalog, subtitles, schedule</a></div>\n");
        }
        if let Some(plant) = &self.plant {
            if depth == self.visibility.depth && !self.visibility.dynamic {
                html.push_str(&plant_snippet(plant));
            }
        }
        html.push_str("</body></html>");
        html
    }
}

/// Appends `n` in decimal without going through `format!` (page rendering
/// is on the scan benches' critical path).
fn push_decimal(out: &mut String, n: usize) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

fn plant_snippet(plant: &Plant) -> String {
    match plant {
        Plant::Public {
            provider,
            api_key,
            key_obfuscated,
            ..
        } => {
            let key_text = if *key_obfuscated {
                "_0x101f38[_0x2c4aeb(0x234)]".to_string()
            } else {
                api_key.clone()
            };
            match provider {
                ProviderTag::Peer5 => format!(
                    r#"<script src="https://api.peer5.com/peer5.js?id={key_text}"></script>"#
                ),
                ProviderTag::Streamroot => format!(
                    r#"<script src="https://cdn.streamroot.io/dna/latest.js"></script><div data-sr-key="{key_text}" streamrootkey></div>"#
                ),
                ProviderTag::Viblast => format!(
                    r#"<script src="https://viblast.com/pdn/player.js"></script><script>viblast({{key:viblast-key="{key_text}"}})</script>"#
                ),
                ProviderTag::GenericWebRtc => "new RTCPeerConnection()".to_string(),
            }
        }
        Plant::Private { server_domain } => format!(
            r#"<script>var pc = new RTCPeerConnection(); var ws = new WebSocket("wss://{server_domain}/signal"); pc.createDataChannel("pdn");</script>"#
        ),
        Plant::WebRtcOther(_) => {
            r#"<script>var pc = new RTCPeerConnection(); pc.createDataChannel("x");</script>"#
                .to_string()
        }
    }
}

/// An Android app in the corpus.
#[derive(Debug, Clone)]
pub struct AndroidApp {
    /// Package name.
    pub package: String,
    /// Google Play downloads, when listed.
    pub downloads: Option<u64>,
    /// Number of historical APK versions carrying the plant.
    pub apk_versions: u32,
    /// Android manifest meta-data keys.
    pub manifest_keys: Vec<String>,
    /// Bundled code namespaces.
    pub namespaces: Vec<String>,
    /// Planted PDN, if any.
    pub plant: Option<Plant>,
    /// Trigger condition.
    pub trigger: Trigger,
    /// Cellular policy pushed by the customer configuration (§IV-D:
    /// "3 apps allowed the use of cellular data for both uploading and
    /// downloading").
    pub cellular_upload: bool,
}

/// Corpus size configuration.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Innocuous websites in the haystack.
    pub website_haystack: usize,
    /// Innocuous apps in the haystack.
    pub app_haystack: usize,
    /// Fraction of haystack sites that are video-related.
    pub video_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            website_haystack: 5_000,
            app_haystack: 20_000,
            video_fraction: 0.25,
        }
    }
}

impl CorpusConfig {
    /// The paper's full scale (slow; used by the long-running benches).
    pub fn paper_scale() -> Self {
        CorpusConfig {
            website_haystack: 68_757,
            app_haystack: 1_500_000,
            video_fraction: 1.0,
        }
    }
}

/// The generated ecosystem.
#[derive(Debug)]
pub struct Ecosystem {
    /// All websites (haystack + plants), shuffled.
    pub websites: Vec<Website>,
    /// All apps (haystack + plants), shuffled.
    pub apps: Vec<AndroidApp>,
}

/// Table II verbatim: (domain, provider, monthly visits).
pub const CONFIRMED_WEBSITES: &[(&str, ProviderTag, Option<u64>)] = &[
    ("rt.com", ProviderTag::Streamroot, Some(117_000_000)),
    ("clarin.com", ProviderTag::Peer5, Some(69_000_000)),
    ("rtve.es", ProviderTag::Peer5, Some(35_000_000)),
    ("jn.pt", ProviderTag::Peer5, Some(12_000_000)),
    ("ojogo.pt", ProviderTag::Peer5, Some(8_000_000)),
    ("dn.pt", ProviderTag::Peer5, Some(6_000_000)),
    ("servustv.com", ProviderTag::Peer5, Some(4_000_000)),
    ("www.popcornflix.com", ProviderTag::Peer5, Some(1_000_000)),
    ("tsf.pt", ProviderTag::Peer5, Some(1_000_000)),
    ("dinheirovivo.pt", ProviderTag::Peer5, Some(1_000_000)),
    ("www.sliver.tv", ProviderTag::Peer5, None),
    ("hdo.tv", ProviderTag::Peer5, None),
    ("www.souvenirsfromearth.tv", ProviderTag::Peer5, None),
    ("www.severestudios.com", ProviderTag::Peer5, None),
    ("www.performancevetsupply.com", ProviderTag::Peer5, None),
    ("www.schoolfordesign.net", ProviderTag::Peer5, None),
    ("9uu.com", ProviderTag::Peer5, None),
];

/// Table III verbatim: (package, provider, downloads, cellular upload).
pub const CONFIRMED_APPS: &[(&str, ProviderTag, Option<u64>, bool)] = &[
    (
        "iflix.play",
        ProviderTag::Streamroot,
        Some(50_000_000),
        false,
    ),
    (
        "fr.francetv.pluzz",
        ProviderTag::Streamroot,
        Some(10_000_000),
        false,
    ),
    (
        "com.nousguide.android.rbtv",
        ProviderTag::Peer5,
        Some(10_000_000),
        false,
    ),
    (
        "com.portonics.mygp",
        ProviderTag::Peer5,
        Some(10_000_000),
        true,
    ),
    ("mivo.tv", ProviderTag::Peer5, Some(10_000_000), false),
    (
        "com.bongo.bioscope",
        ProviderTag::Peer5,
        Some(5_000_000),
        true,
    ),
    ("tv.fubo.mobile", ProviderTag::Peer5, Some(5_000_000), false),
    (
        "com.rt.mobile.english",
        ProviderTag::Streamroot,
        Some(1_000_000),
        false,
    ),
    (
        "vn.com.vega.clipvn",
        ProviderTag::Peer5,
        Some(1_000_000),
        false,
    ),
    (
        "com.flipps.fitetv",
        ProviderTag::Peer5,
        Some(1_000_000),
        false,
    ),
    // The paper's Table III lists vn.com.vega.clipvn twice; reproduced as a
    // distinct row so counts match (18 rows).
    (
        "vn.com.vega.clipvn.row2",
        ProviderTag::Peer5,
        Some(1_000_000),
        false,
    ),
    (
        "com.arenacloudtv.android",
        ProviderTag::Peer5,
        Some(500_000),
        true,
    ),
    (
        "com.televisions.burma",
        ProviderTag::Peer5,
        Some(50_000),
        false,
    ),
    ("com.totalaccesstv.live", ProviderTag::Peer5, None, false),
    ("dev.hw.app.tgnd", ProviderTag::Peer5, None, false),
    ("tv.almighty.apk", ProviderTag::Peer5, None, false),
    ("com.rvcomx.brpro", ProviderTag::Peer5, None, false),
    ("com.lts.cricingif", ProviderTag::Peer5, None, false),
];

/// Table IV verbatim: (domain, signaling server, monthly visits, trigger).
pub const PRIVATE_PDN_SITES: &[(&str, &str, u64, Trigger)] = &[
    (
        "bilibili.com",
        "hw-v2-web-player-tracker.biliapi.net",
        911_000_000,
        Trigger::Always,
    ),
    ("ok.ru", "vm.mycdn.me", 662_000_000, Trigger::Always),
    (
        "douyu.com",
        "wsproxy.douyu.com",
        95_000_000,
        Trigger::GeoRestricted("CN"),
    ),
    (
        "v.qq.com",
        "webrtcpunch.video.qq.com",
        92_000_000,
        Trigger::GeoRestricted("CN"),
    ),
    (
        "iqiyi.com",
        "broker-qx-ws2.iqiyi.com",
        82_000_000,
        Trigger::GeoRestricted("CN"),
    ),
    ("huya.com", "wsapi.huya.com", 61_000_000, Trigger::Always),
    (
        "youku.com",
        "ws.mmstat.com",
        60_000_000,
        Trigger::GeoRestricted("CN"),
    ),
    (
        "tudou.com",
        "ws.mmstat.com",
        44_000_000,
        Trigger::GeoRestricted("CN"),
    ),
    (
        "mgtv.com",
        "signal.api.mgtv.com",
        42_000_000,
        Trigger::Always,
    ),
    (
        "younow.com",
        "signaling.younow-prod.video.propsproject.com",
        1_000_000,
        Trigger::Always,
    ),
];

/// Per-provider plant totals from Table I:
/// (provider, potential sites, confirmed sites, potential apps, confirmed
/// apps, potential APKs, confirmed APKs).
pub const TABLE1_PLAN: &[(ProviderTag, usize, usize, usize, usize, u32, u32)] = &[
    (ProviderTag::Peer5, 60, 16, 31, 15, 548, 199),
    (ProviderTag::Streamroot, 53, 1, 6, 3, 68, 53),
    (ProviderTag::Viblast, 21, 0, 1, 0, 11, 0),
];

/// Key-extraction ground truth from §IV-B: per provider
/// (extractable keys, expired among them, valid-without-allowlist).
/// 44 extracted = 40 valid + 4 expired; valid split 36/1/3; 11 Peer5 keys
/// lack the allowlist.
const KEY_PLAN: &[(ProviderTag, usize, usize, usize)] = &[
    (ProviderTag::Peer5, 39, 3, 11),
    (ProviderTag::Streamroot, 2, 1, 0),
    (ProviderTag::Viblast, 3, 0, 0),
];

/// Generates the ecosystem.
pub fn generate(cfg: CorpusConfig, rng: &mut SimRng) -> Ecosystem {
    let mut websites = Vec::new();
    let mut apps = Vec::new();

    // ---------------- haystack ----------------
    for i in 0..cfg.website_haystack {
        websites.push(Website {
            domain: format!("site-{i}.example"),
            rank: rng.range(1..300_000u32),
            video_category: rng.chance(cfg.video_fraction),
            in_source_index: false,
            monthly_visits: None,
            plant: None,
            visibility: Visibility {
                depth: 0,
                dynamic: false,
            },
            trigger: Trigger::Always,
        });
    }
    for i in 0..cfg.app_haystack {
        apps.push(AndroidApp {
            package: format!("com.haystack.app{i}"),
            downloads: None,
            apk_versions: rng.range(1..20u32),
            manifest_keys: vec!["android.permission.INTERNET".into()],
            namespaces: vec![format!("com.haystack.app{i}")],
            plant: None,
            trigger: Trigger::Always,
            cellular_upload: false,
        });
    }

    // ---------------- public-provider websites ----------------
    for (provider, pot_sites, conf_sites, _pa, _ca, _pv, _cv) in TABLE1_PLAN {
        let (extractable, expired, no_allowlist) = key_plan(provider);
        let mut extractable_left = extractable;
        let mut expired_left = expired;
        let mut no_allowlist_left = no_allowlist;
        let confirmed_names: Vec<&str> = CONFIRMED_WEBSITES
            .iter()
            .filter(|(_, p, _)| p == provider)
            .map(|(d, _, _)| *d)
            .collect();
        debug_assert_eq!(confirmed_names.len(), *conf_sites);
        for i in 0..*pot_sites {
            let confirmed = i < *conf_sites;
            let domain = match confirmed_names.get(i) {
                Some(name) => name.to_string(),
                None => format!("{}-cust-{i}.tv", provider.to_string().to_lowercase()),
            };
            let visits = CONFIRMED_WEBSITES
                .iter()
                .find(|(d, _, _)| *d == domain)
                .and_then(|(_, _, v)| *v);
            // Keys: extractable ones first; §IV-B stats derive from these.
            let key_obfuscated = extractable_left == 0;
            let key_expired = !key_obfuscated && {
                // Spread expirations across the *unconfirmed* plants.
                let take = expired_left > 0 && !confirmed;
                if take {
                    expired_left -= 1;
                }
                take
            };
            let allowlist_enabled = if key_obfuscated || key_expired {
                true
            } else if no_allowlist_left > 0 {
                no_allowlist_left -= 1;
                false
            } else {
                true
            };
            extractable_left = extractable_left.saturating_sub(1);
            let trigger = if confirmed {
                Trigger::Always
            } else {
                match i % 3 {
                    0 => Trigger::GeoRestricted("RS"),
                    1 => Trigger::SubscriptionRequired,
                    _ => Trigger::SubpageOnly,
                }
            };
            websites.push(Website {
                domain: domain.clone(),
                rank: rng.range(100..250_000u32),
                video_category: true,
                in_source_index: i % 4 == 0,
                monthly_visits: visits,
                plant: Some(Plant::Public {
                    provider: provider.clone(),
                    // Keys are alphanumeric-with-dashes (dots would stop
                    // the regex extractor prematurely).
                    api_key: format!("key-{}", domain.replace('.', "-")),
                    key_obfuscated,
                    key_expired,
                    allowlist_enabled,
                }),
                visibility: Visibility {
                    depth: rng.range(0..3u32),
                    dynamic: false,
                },
                trigger,
            });
        }
    }

    // ---------------- private PDN + other WebRTC websites ----------------
    for (domain, server, visits, trigger) in PRIVATE_PDN_SITES {
        websites.push(Website {
            domain: domain.to_string(),
            rank: rng.range(1..5_000u32), // all are top-10K
            video_category: true,
            in_source_index: false,
            monthly_visits: Some(*visits),
            plant: Some(Plant::Private {
                server_domain: server.to_string(),
            }),
            visibility: Visibility {
                depth: 0,
                dynamic: false,
            },
            trigger: *trigger,
        });
    }
    // 2 adult TURN-relayed platforms + 3 tracking + 42 untriggerable in the
    // top-10K (57 total generic hits there), plus 328 below top-10K.
    let add_webrtc = |websites: &mut Vec<Website>,
                      n: usize,
                      usage: WebRtcUse,
                      top10k: bool,
                      rng: &mut SimRng| {
        for i in 0..n {
            websites.push(Website {
                domain: format!("webrtc-{usage:?}-{i}.example").to_lowercase(),
                rank: if top10k {
                    rng.range(1..10_000u32)
                } else {
                    rng.range(10_000..300_000u32)
                },
                video_category: true,
                in_source_index: false,
                monthly_visits: None,
                plant: Some(Plant::WebRtcOther(usage)),
                visibility: Visibility {
                    depth: 0,
                    dynamic: false,
                },
                trigger: match usage {
                    WebRtcUse::Unknown => Trigger::SubscriptionRequired,
                    _ => Trigger::Always,
                },
            });
        }
    };
    add_webrtc(&mut websites, 2, WebRtcUse::TurnRelayed, true, rng);
    add_webrtc(&mut websites, 3, WebRtcUse::Tracking, true, rng);
    add_webrtc(&mut websites, 42, WebRtcUse::Unknown, true, rng);
    add_webrtc(&mut websites, 328, WebRtcUse::Unknown, false, rng);

    // ---------------- public-provider apps ----------------
    for (provider, _ps, _cs, pot_apps, conf_apps, pot_apks, conf_apks) in TABLE1_PLAN {
        let confirmed_pkgs: Vec<(&str, Option<u64>, bool)> = CONFIRMED_APPS
            .iter()
            .filter(|(_, p, _, _)| p == provider)
            .map(|(d, _, v, c)| (*d, *v, *c))
            .collect();
        debug_assert_eq!(confirmed_pkgs.len(), *conf_apps);
        let conf_versions = spread(*conf_apks, *conf_apps);
        let unconf_versions = spread(pot_apks - conf_apks, pot_apps - conf_apps);
        for i in 0..*pot_apps {
            let confirmed = i < *conf_apps;
            let (package, downloads, cellular) = if confirmed {
                confirmed_pkgs[i]
            } else {
                // Leak the borrow by allocating the name up front.
                ("", None, false)
            };
            let package = if confirmed {
                package.to_string()
            } else {
                format!("{}.app{i}", provider.to_string().to_lowercase())
            };
            let apk_versions = if confirmed {
                conf_versions[i]
            } else {
                unconf_versions[i - conf_apps]
            };
            let (manifest_keys, namespaces) = match provider {
                ProviderTag::Peer5 => (
                    vec!["com.peer5.ApiKey".to_string()],
                    vec!["com.peer5.sdk".to_string(), package.clone()],
                ),
                ProviderTag::Streamroot => (
                    vec!["io.streamroot.dna.StreamrootKey".to_string()],
                    vec!["io.streamroot.dna".to_string(), package.clone()],
                ),
                ProviderTag::Viblast => (
                    vec![],
                    vec!["com.viblast.android".to_string(), package.clone()],
                ),
                ProviderTag::GenericWebRtc => (vec![], vec![package.clone()]),
            };
            apps.push(AndroidApp {
                package: package.clone(),
                downloads,
                apk_versions,
                manifest_keys,
                namespaces,
                plant: Some(Plant::Public {
                    provider: provider.clone(),
                    api_key: format!("key-{package}"),
                    key_obfuscated: true, // app keys need static analysis
                    key_expired: false,
                    allowlist_enabled: true,
                }),
                trigger: if confirmed {
                    Trigger::Always
                } else {
                    Trigger::SubscriptionRequired
                },
                cellular_upload: cellular,
            });
        }
    }

    rng.shuffle(&mut websites);
    rng.shuffle(&mut apps);
    Ecosystem { websites, apps }
}

fn key_plan(provider: &ProviderTag) -> (usize, usize, usize) {
    KEY_PLAN
        .iter()
        .find(|(p, ..)| p == provider)
        .map(|(_, a, b, c)| (*a, *b, *c))
        .unwrap_or((0, 0, 0))
}

/// Distributes `total` across `n` buckets as evenly as possible.
fn spread(total: u32, n: usize) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    let base = total / n as u32;
    let extra = (total % n as u32) as usize;
    (0..n)
        .map(|i| base + if i < extra { 1 } else { 0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ecosystem {
        let mut rng = SimRng::seed(1);
        generate(
            CorpusConfig {
                website_haystack: 100,
                app_haystack: 100,
                video_fraction: 0.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn plant_counts_match_table1_plan() {
        let eco = small();
        for (provider, pot_sites, _, pot_apps, _, pot_apks, _) in TABLE1_PLAN {
            let sites = eco
                .websites
                .iter()
                .filter(|w| matches!(&w.plant, Some(Plant::Public { provider: p, .. }) if p == provider))
                .count();
            assert_eq!(sites, *pot_sites, "{provider} sites");
            let (apps, apks) = eco
                .apps
                .iter()
                .filter(|a| matches!(&a.plant, Some(Plant::Public { provider: p, .. }) if p == provider))
                .fold((0usize, 0u32), |(n, v), a| (n + 1, v + a.apk_versions));
            assert_eq!(apps, *pot_apps, "{provider} apps");
            assert_eq!(apks, *pot_apks, "{provider} APK versions");
        }
    }

    #[test]
    fn key_plan_counts() {
        let eco = small();
        let mut extracted = 0;
        let mut expired = 0;
        let mut no_allow = 0;
        for w in &eco.websites {
            if let Some(Plant::Public {
                key_obfuscated,
                key_expired,
                allowlist_enabled,
                ..
            }) = &w.plant
            {
                if !key_obfuscated {
                    extracted += 1;
                    if *key_expired {
                        expired += 1;
                    } else if !allowlist_enabled {
                        no_allow += 1;
                    }
                }
            }
        }
        assert_eq!(extracted, 44, "44 extractable keys");
        assert_eq!(expired, 4, "4 expired keys");
        assert_eq!(no_allow, 11, "11 valid keys without allowlist");
    }

    #[test]
    fn private_sites_present_with_servers() {
        let eco = small();
        let privates: Vec<&Website> = eco
            .websites
            .iter()
            .filter(|w| matches!(w.plant, Some(Plant::Private { .. })))
            .collect();
        assert_eq!(privates.len(), 10);
        assert!(privates.iter().all(|w| w.rank < 10_000));
    }

    #[test]
    fn page_content_contains_signature_at_plant_depth() {
        let eco = small();
        let site = eco
            .websites
            .iter()
            .find(|w| {
                matches!(
                    &w.plant,
                    Some(Plant::Public {
                        provider: ProviderTag::Peer5,
                        key_obfuscated: false,
                        ..
                    })
                )
            })
            .unwrap();
        let page = site.page_content(site.visibility.depth);
        assert!(page.contains("api.peer5.com/peer5.js?id="));
        // Other depths are clean.
        let other = site.page_content(site.visibility.depth + 1);
        assert!(!other.contains("peer5.js"));
    }

    #[test]
    fn obfuscated_keys_not_in_page_text() {
        let eco = small();
        for w in &eco.websites {
            if let Some(Plant::Public {
                api_key,
                key_obfuscated: true,
                ..
            }) = &w.plant
            {
                let page = w.page_content(w.visibility.depth);
                assert!(!page.contains(api_key.as_str()), "{}", w.domain);
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut r1 = SimRng::seed(9);
        let mut r2 = SimRng::seed(9);
        let a = generate(CorpusConfig::default(), &mut r1);
        let b = generate(CorpusConfig::default(), &mut r2);
        assert_eq!(a.websites.len(), b.websites.len());
        assert_eq!(a.websites[0].domain, b.websites[0].domain);
        assert_eq!(a.apps[17].package, b.apps[17].package);
    }

    #[test]
    fn spread_sums() {
        assert_eq!(spread(10, 3), vec![4, 3, 3]);
        assert_eq!(spread(0, 2), vec![0, 0]);
        assert!(spread(5, 0).is_empty());
    }
}

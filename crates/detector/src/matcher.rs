//! Precompiled multi-pattern signature matching.
//!
//! The naive matcher in [`crate::signatures`] re-lowercases the entire page
//! *and every needle* on every call and then runs one substring scan per
//! signature — O(signatures × page_len) with two fresh allocations per
//! signature test. At the paper's scale (Tranco-300K crawl, 1.5M APKs,
//! §III-C) and with a realistic multi-version signature database, that
//! dominates the scan. This module provides a from-scratch
//! [Aho–Corasick](https://doi.org/10.1145/360825.360855) automaton compiled
//! once per signature database — one pass over the content regardless of
//! signature count, zero per-page allocations beyond the result vector —
//! plus the two tricks that make it fast in practice:
//!
//! - **byte-class compression**: input bytes are mapped through a 256-entry
//!   equivalence-class table (bytes not occurring in any pattern share one
//!   dead class), shrinking the transition table by ~8× so it stays
//!   cache-resident; ASCII case folding is baked into the same table, so
//!   the search loop never branches on case;
//! - **gateway prefiltering** for page content: every page needle contains
//!   one of a handful of brand tokens (`peer5`, `streamroot`, …), so a page
//!   with no gateway token — the overwhelming majority of a crawl — is
//!   rejected with a few SIMD-accelerated `str::contains` probes and never
//!   enters the automaton at all.
//!
//! Case folding is ASCII-only (the signature needles are all ASCII). This
//! differs from `str::to_lowercase` for exotic code points whose Unicode
//! lowercase maps into ASCII (e.g. the Kelvin sign), which cannot occur in
//! the needles and is not a meaningful signal in scanned content.
//!
//! [`SignatureMatcher`] wraps three automatons (page content, manifest
//! keys, APK namespaces) behind the same semantics as the naive
//! [`crate::signatures::match_page`]/[`crate::signatures::match_apk`],
//! which are kept as the reference implementation for the equivalence
//! property tests and the `matcher_vs_naive` bench.

use crate::signatures::{ProviderTag, Signature, SignatureKind};

/// Sentinel for "no transition" during construction.
const NONE: u32 = u32::MAX;

/// The brand tokens used to prefilter page content. A page that contains
/// none of these (case-folded) cannot match any page signature whose
/// needle contains one of them; [`SignatureMatcher::new`] verifies that
/// coverage and disables the prefilter for databases where it doesn't
/// hold.
/// `peer` covers both the Peer5 family and every `RTCPeerConnection`
/// variant, so four probes suffice for the built-in database.
const PAGE_GATEWAYS: &[&str] = &["peer", "streamroot", "viblast", "datachannel"];

/// A byte-level Aho–Corasick automaton over up to 64 patterns.
///
/// Matches are reported as a `u64` bitmask of pattern indices (in the order
/// the patterns were handed to [`AhoCorasick::new`]), which keeps the hot
/// path allocation-free.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Maps an input byte to its equivalence class; case folding (when
    /// enabled) is baked in, and bytes absent from every pattern share
    /// class 0.
    classes: Box<[u8; 256]>,
    /// Row stride = number of classes rounded up to a power of two, so the
    /// row index is a shift rather than a multiply.
    stride_shift: u32,
    /// Dense transition table: `trans[(state << stride_shift) | class]` is
    /// the next state. After construction this is total (failure links are
    /// baked in), so the search loop is a single indexed load per byte.
    trans: Vec<u16>,
    /// `out[state]` is the bitmask of patterns ending at this state or at
    /// any state reachable via suffix (failure) links.
    out: Vec<u64>,
    /// Pattern lengths, for anchored (prefix) matching.
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Compiles an automaton from `patterns`.
    ///
    /// # Panics
    ///
    /// Panics when more than 64 patterns are supplied (the result bitmask
    /// is a `u64`) or when a pattern is empty.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P], case_fold: bool) -> Self {
        assert!(
            patterns.len() <= 64,
            "AhoCorasick supports at most 64 patterns, got {}",
            patterns.len()
        );
        let fold = |b: u8| if case_fold { b.to_ascii_lowercase() } else { b };

        // Byte-class assignment: class 0 is "occurs in no pattern"; each
        // distinct (folded) pattern byte gets its own class.
        let mut classes = Box::new([0u8; 256]);
        let mut class_count = 1usize;
        for pattern in patterns {
            for &raw in pattern.as_ref() {
                let b = fold(raw) as usize;
                if classes[b] == 0 {
                    classes[b] = class_count as u8;
                    class_count += 1;
                }
            }
        }
        assert!(class_count <= 256, "byte classes overflow");
        // With folding, route both cases of a letter to the same class.
        if case_fold {
            for b in b'A'..=b'Z' {
                classes[b as usize] = classes[b.to_ascii_lowercase() as usize];
            }
        }
        let stride = class_count.next_power_of_two();
        let stride_shift = stride.trailing_zeros();

        // Trie construction over the class alphabet.
        let mut trans: Vec<u32> = vec![NONE; stride];
        let mut out: Vec<u64> = vec![0];
        let mut pattern_lens = Vec::with_capacity(patterns.len());
        for (idx, pattern) in patterns.iter().enumerate() {
            let bytes = pattern.as_ref();
            assert!(!bytes.is_empty(), "empty pattern at index {idx}");
            pattern_lens.push(bytes.len());
            let mut state = 0usize;
            for &raw in bytes {
                let c = classes[fold(raw) as usize] as usize;
                let slot = (state << stride_shift) | c;
                let next = trans[slot];
                state = if next == NONE {
                    let new_state = out.len() as u32;
                    trans[slot] = new_state;
                    trans.resize(trans.len() + stride, NONE);
                    out.push(0);
                    new_state as usize
                } else {
                    next as usize
                };
            }
            out[state] |= 1 << idx;
        }
        assert!(out.len() < u16::MAX as usize, "too many states for u16");

        // BFS over the trie: compute failure links, merge suffix outputs,
        // and bake failures into the transition table so the search loop
        // never walks a failure chain.
        let state_count = out.len();
        let mut fail: Vec<u32> = vec![0; state_count];
        let mut queue = std::collections::VecDeque::new();
        for slot in trans.iter_mut().take(stride) {
            let next = *slot;
            if next == NONE {
                *slot = 0;
            } else {
                fail[next as usize] = 0;
                queue.push_back(next);
            }
        }
        while let Some(state) = queue.pop_front() {
            let s = state as usize;
            out[s] |= out[fail[s] as usize];
            for c in 0..stride {
                let slot = (s << stride_shift) | c;
                let next = trans[slot];
                let via_fail = trans[((fail[s] as usize) << stride_shift) | c];
                if next == NONE {
                    trans[slot] = via_fail;
                } else {
                    fail[next as usize] = via_fail;
                    queue.push_back(next);
                }
            }
        }

        AhoCorasick {
            classes,
            stride_shift,
            trans: trans.into_iter().map(|s| s as u16).collect(),
            out,
            pattern_lens,
        }
    }

    /// Returns the bitmask of patterns occurring anywhere in `haystack`.
    ///
    /// Single pass, no allocation. When the automaton was built with case
    /// folding, `haystack` may be any case (folding is baked into the
    /// class table).
    pub fn match_mask(&self, haystack: &[u8]) -> u64 {
        let mut state = 0usize;
        let mut mask = 0u64;
        for &raw in haystack {
            let c = self.classes[raw as usize] as usize;
            state = self.trans[(state << self.stride_shift) | c] as usize;
            mask |= self.out[state];
        }
        mask
    }

    /// Returns the bitmask of patterns that are *prefixes* of `haystack`
    /// (anchored matching, for `starts_with` semantics).
    ///
    /// Walks at most `max_pattern_len` bytes.
    pub fn prefix_mask(&self, haystack: &[u8]) -> u64 {
        let mut state = 0usize;
        let mut mask = 0u64;
        for (i, &raw) in haystack.iter().enumerate() {
            let c = self.classes[raw as usize] as usize;
            state = self.trans[(state << self.stride_shift) | c] as usize;
            let mut hits = self.out[state];
            while hits != 0 {
                let idx = hits.trailing_zeros() as usize;
                hits &= hits - 1;
                // A pattern ending at position i+1 is anchored iff its
                // length is exactly i+1.
                if self.pattern_lens[idx] == i + 1 {
                    mask |= 1 << idx;
                }
            }
            if state == 0 {
                // Fell back to the root: no pattern can still be a prefix.
                break;
            }
        }
        mask
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }
}

/// Reusable per-worker scratch for the page hot path: the case-folded copy
/// of the page under scan. One allocation per worker, reused across every
/// page in its shard.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    folded: String,
}

/// The signature database compiled for the scan hot path.
///
/// Built once (per [`crate::scanner::Scanner`]) from a `&[Signature]` and
/// shared read-only across scan worker threads.
#[derive(Debug, Clone)]
pub struct SignatureMatcher {
    /// Case-folded automaton over `PageContent` needles.
    page: AhoCorasick,
    /// Provider for each page pattern index.
    page_providers: Vec<ProviderTag>,
    /// Brand tokens covering every page needle, when such coverage holds
    /// (see [`PAGE_GATEWAYS`]); `None` disables the prefilter.
    page_gateways: Option<&'static [&'static str]>,
    /// Case-sensitive automaton over `AndroidManifest` needles
    /// (substring semantics, like the naive `k.contains(needle)`).
    manifest: AhoCorasick,
    manifest_providers: Vec<ProviderTag>,
    /// Case-sensitive automaton over `AndroidNamespace` needles
    /// (anchored semantics, like the naive `n.starts_with(needle)`).
    namespace: AhoCorasick,
    namespace_providers: Vec<ProviderTag>,
}

impl SignatureMatcher {
    /// Compiles `signatures` into per-kind automatons.
    pub fn new(signatures: &[Signature]) -> Self {
        let collect = |kind: SignatureKind| -> (Vec<&'static str>, Vec<ProviderTag>) {
            let mut needles = Vec::new();
            let mut providers = Vec::new();
            for s in signatures.iter().filter(|s| s.kind == kind) {
                needles.push(s.needle);
                providers.push(s.provider.clone());
            }
            (needles, providers)
        };
        let (page_needles, page_providers) = collect(SignatureKind::PageContent);
        let (manifest_needles, manifest_providers) = collect(SignatureKind::AndroidManifest);
        let (namespace_needles, namespace_providers) = collect(SignatureKind::AndroidNamespace);
        // The prefilter is only sound when every page needle contains a
        // gateway token; databases that break coverage fall back to the
        // bare automaton.
        let covered = page_needles.iter().all(|n| {
            let folded = n.to_ascii_lowercase();
            PAGE_GATEWAYS.iter().any(|g| folded.contains(g))
        });
        SignatureMatcher {
            page: AhoCorasick::new(&page_needles, true),
            page_providers,
            page_gateways: covered.then_some(PAGE_GATEWAYS),
            manifest: AhoCorasick::new(&manifest_needles, false),
            manifest_providers,
            namespace: AhoCorasick::new(&namespace_needles, false),
            namespace_providers,
        }
    }

    /// Matches page content; same semantics as the reference
    /// [`crate::signatures::match_page`]: case-insensitive substring
    /// search, known-provider hits subsume [`ProviderTag::GenericWebRtc`],
    /// result sorted and deduplicated.
    ///
    /// Convenience wrapper that pays one scratch allocation; the scan loop
    /// uses [`SignatureMatcher::match_page_in`] with a per-worker
    /// [`Scratch`].
    pub fn match_page(&self, content: &str) -> Vec<ProviderTag> {
        self.match_page_in(&mut Scratch::default(), content)
    }

    /// [`SignatureMatcher::match_page`] with caller-provided scratch.
    pub fn match_page_in(&self, scratch: &mut Scratch, content: &str) -> Vec<ProviderTag> {
        let mask = self.page_mask(scratch, content);
        let mut hits = providers_from_mask(mask, &self.page_providers);
        apply_generic_subsumption(&mut hits);
        hits
    }

    /// Whether any page signature matches at all (cheap pre-check).
    pub fn page_matches(&self, content: &str) -> bool {
        self.page_mask(&mut Scratch::default(), content) != 0
    }

    fn page_mask(&self, scratch: &mut Scratch, content: &str) -> u64 {
        // Fold once into the reused buffer (in-place ASCII lowercasing is
        // vectorized and keeps the content valid UTF-8).
        scratch.folded.clear();
        scratch.folded.push_str(content);
        scratch.folded.make_ascii_lowercase();
        let folded: &str = &scratch.folded;
        if let Some(gateways) = self.page_gateways {
            // SIMD substring probes reject the (overwhelmingly common)
            // no-signature page without walking the automaton.
            if !gateways.iter().any(|g| folded.contains(g)) {
                return 0;
            }
        }
        self.page.match_mask(folded.as_bytes())
    }

    /// Matches APK artifacts; same semantics as the reference
    /// [`crate::signatures::match_apk`]: substring match on manifest keys,
    /// prefix match on namespaces, case-sensitive.
    pub fn match_apk(&self, manifest_keys: &[String], namespaces: &[String]) -> Vec<ProviderTag> {
        let mut manifest_mask = 0u64;
        for key in manifest_keys {
            manifest_mask |= self.manifest.match_mask(key.as_bytes());
            if manifest_mask.count_ones() as usize == self.manifest.pattern_count() {
                break;
            }
        }
        let mut namespace_mask = 0u64;
        for ns in namespaces {
            namespace_mask |= self.namespace.prefix_mask(ns.as_bytes());
            if namespace_mask.count_ones() as usize == self.namespace.pattern_count() {
                break;
            }
        }
        let mut hits = providers_from_mask(manifest_mask, &self.manifest_providers);
        hits.extend(providers_from_mask(
            namespace_mask,
            &self.namespace_providers,
        ));
        hits.sort_unstable();
        hits.dedup();
        hits
    }
}

/// Expands a pattern bitmask to its (sorted, deduplicated) providers.
fn providers_from_mask(mut mask: u64, providers: &[ProviderTag]) -> Vec<ProviderTag> {
    let mut hits = Vec::new();
    while mask != 0 {
        let idx = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        hits.push(providers[idx].clone());
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Known-provider hits subsume generic WebRTC hits (§III-D: generic
/// matches only feed the private-PDN triage when no known SDK matched).
fn apply_generic_subsumption(hits: &mut Vec<ProviderTag>) {
    if hits.iter().any(|p| *p != ProviderTag::GenericWebRtc) {
        hits.retain(|p| *p != ProviderTag::GenericWebRtc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signatures::{builtin_signatures, match_apk, match_page};
    use proptest::prelude::*;

    #[test]
    fn automaton_finds_overlapping_patterns() {
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"], false);
        let mask = ac.match_mask(b"ushers");
        // "she" at 1, "he" at 2, "hers" at 2.
        assert_eq!(mask, 0b1011);
        assert_eq!(ac.match_mask(b"his"), 0b0100);
        assert_eq!(ac.match_mask(b"xyz"), 0);
    }

    #[test]
    fn case_folding_matches_mixed_case() {
        let ac = AhoCorasick::new(&["RTCPeerConnection"], true);
        assert_ne!(ac.match_mask(b"new rtcpeerconnection()"), 0);
        assert_ne!(ac.match_mask(b"NEW RTCPEERCONNECTION()"), 0);
        let strict = AhoCorasick::new(&["RTCPeerConnection"], false);
        assert_eq!(strict.match_mask(b"new rtcpeerconnection()"), 0);
    }

    #[test]
    fn prefix_mask_is_anchored() {
        let ac = AhoCorasick::new(&["com.viblast.android", "io.streamroot.dna"], false);
        assert_eq!(ac.prefix_mask(b"com.viblast.android.player"), 0b01);
        assert_eq!(ac.prefix_mask(b"io.streamroot.dna"), 0b10);
        // Occurs, but not at the start: no anchored match.
        assert_eq!(ac.prefix_mask(b"app.com.viblast.android"), 0);
    }

    #[test]
    fn one_pattern_inside_another() {
        let ac = AhoCorasick::new(&["abc", "b"], false);
        assert_eq!(ac.match_mask(b"abc"), 0b11);
        assert_eq!(ac.match_mask(b"b"), 0b10);
    }

    #[test]
    fn builtin_page_needles_are_gateway_covered() {
        // The prefilter must stay enabled for the built-in database.
        let m = SignatureMatcher::new(&builtin_signatures());
        assert!(m.page_gateways.is_some());
    }

    #[test]
    fn uncovered_needles_disable_the_prefilter() {
        let sigs = vec![Signature {
            provider: ProviderTag::GenericWebRtc,
            kind: SignatureKind::PageContent,
            needle: "some-custom-sdk.js",
        }];
        let m = SignatureMatcher::new(&sigs);
        assert!(m.page_gateways.is_none());
        assert_eq!(
            m.match_page("<script src=\"some-custom-sdk.js\"></script>"),
            vec![ProviderTag::GenericWebRtc]
        );
    }

    #[test]
    fn matches_reference_on_builtin_corpus_samples() {
        let sigs = builtin_signatures();
        let m = SignatureMatcher::new(&sigs);
        for content in [
            r#"<script src="https://api.peer5.com/peer5.js?id=abc123"></script>"#,
            r#"<script src="https://cdn.streamroot.io/dna/latest.js"></script>"#,
            "new RTCPeerConnection(); api.peer5.com/peer5.js?id=x",
            "pc = new RTCPeerConnection(); pc.createDataChannel('x')",
            "<html>plain page</html>",
            "WINDOW.PEER5 viblast( STREAMROOTKEY",
        ] {
            assert_eq!(
                m.match_page(content),
                match_page(&sigs, content),
                "{content}"
            );
        }
        for (keys, namespaces) in [
            (vec!["io.streamroot.dna.StreamrootKey".to_string()], vec![]),
            (vec![], vec!["com.viblast.android.player".to_string()]),
            (vec![], vec!["app.com.viblast.android".to_string()]),
            (
                vec!["com.peer5.ApiKey".to_string()],
                vec![
                    "io.streamroot.dna".to_string(),
                    "com.peer5.sdk.x".to_string(),
                ],
            ),
            (vec![], vec![]),
        ] {
            assert_eq!(
                m.match_apk(&keys, &namespaces),
                match_apk(&sigs, &keys, &namespaces),
                "{keys:?} {namespaces:?}"
            );
        }
    }

    /// Builds arbitrary content biased to contain needle fragments, so the
    /// property tests actually exercise hits, near-misses, and overlaps
    /// rather than random noise that never matches.
    fn salted_content(words: &[String], salts: &[usize]) -> String {
        let sigs = builtin_signatures();
        let mut out = String::new();
        for (i, w) in words.iter().enumerate() {
            out.push_str(w);
            if let Some(&salt) = salts.get(i) {
                let s = &sigs[salt % sigs.len()];
                // Sometimes the full needle, sometimes a truncated tease.
                let cut = (salt / sigs.len()) % s.needle.len() + 1;
                out.push_str(&s.needle[..if salt % 3 == 0 { s.needle.len() } else { cut }]);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The automaton agrees with the naive `contains` reference on
        /// arbitrary (needle-salted) content.
        fn page_matcher_equals_reference(
            words in proptest::collection::vec("[ -~]{0,12}", 0..8),
            salts in proptest::collection::vec(0usize..4096, 0..8),
        ) {
            let sigs = builtin_signatures();
            let m = SignatureMatcher::new(&sigs);
            let content = salted_content(&words, &salts);
            prop_assert_eq!(m.match_page(&content), match_page(&sigs, &content));
        }

        /// Same for the APK side (manifest substring + namespace prefix).
        fn apk_matcher_equals_reference(
            keys in proptest::collection::vec("[ -~]{0,40}", 0..4),
            namespaces in proptest::collection::vec("[a-z.]{0,30}", 0..4),
            salts in proptest::collection::vec(0usize..4096, 0..4),
        ) {
            let sigs = builtin_signatures();
            let m = SignatureMatcher::new(&sigs);
            // Salt some entries with real needles so anchored/substring
            // paths are exercised.
            let mut keys = keys;
            let mut namespaces = namespaces;
            for (i, &salt) in salts.iter().enumerate() {
                let s = &sigs[salt % sigs.len()];
                if i % 2 == 0 {
                    if let Some(k) = keys.get_mut(i / 2) {
                        k.push_str(s.needle);
                    }
                } else if let Some(n) = namespaces.get_mut(i / 2) {
                    let pos = salt % (n.len() + 1);
                    n.insert_str(pos, s.needle);
                }
            }
            prop_assert_eq!(
                m.match_apk(&keys, &namespaces),
                match_apk(&sigs, &keys, &namespaces)
            );
        }

        /// Raw automaton vs naive substring search over arbitrary patterns.
        fn automaton_equals_contains(
            hay in "[a-c]{0,64}",
            pats in proptest::collection::vec("[a-c]{1,5}", 1..8),
        ) {
            let ac = AhoCorasick::new(&pats, false);
            let mask = ac.match_mask(hay.as_bytes());
            for (i, p) in pats.iter().enumerate() {
                prop_assert_eq!(
                    mask & (1 << i) != 0,
                    hay.contains(p.as_str()),
                    "pattern {:?} in {:?}", p, hay
                );
            }
        }
    }
}

//! The full detection pipeline and the Table I–IV reproductions.
//!
//! Runs the §III-C funnel end to end — static scan → dynamic confirmation
//! (websites and apps) → private-PDN triage (§III-D) — and assembles the
//! same tables the paper reports, plus the extracted-key corpus that feeds
//! the §IV-B free-riding field study in `pdn-core`.

use std::collections::HashMap;

use pdn_simnet::SimRng;

use crate::corpus::{Ecosystem, Plant, Trigger, Website};
use crate::dynamic::{paper_vantages, watch_sessions, DynamicVerdict, Vantage};
use crate::scanner::{default_workers, AppDetection, Scanner, SiteDetection};
use crate::signatures::ProviderTag;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Provider.
    pub provider: ProviderTag,
    /// Confirmed / potential websites.
    pub websites: (usize, usize),
    /// Confirmed / potential apps.
    pub apps: (usize, usize),
    /// Confirmed / potential APK versions.
    pub apks: (u32, u32),
}

/// A confirmed customer row (Tables II and III).
#[derive(Debug, Clone)]
pub struct ConfirmedRow {
    /// Domain or package.
    pub name: String,
    /// Provider.
    pub provider: ProviderTag,
    /// Monthly visits / downloads, when known.
    pub popularity: Option<u64>,
}

/// A confirmed private PDN service (Table IV).
#[derive(Debug, Clone)]
pub struct PrivateRow {
    /// Platform domain.
    pub domain: String,
    /// Signaling server.
    pub server: String,
    /// Monthly visits.
    pub monthly_visits: Option<u64>,
}

/// An API key recovered by the scanner, for the §IV-B field study.
#[derive(Debug, Clone)]
pub struct ExtractedKey {
    /// Customer domain it was extracted from.
    pub domain: String,
    /// Attributed provider.
    pub provider: ProviderTag,
    /// The key.
    pub key: String,
}

/// The private-PDN triage of §III-D.
#[derive(Debug, Clone, Default)]
pub struct PrivateTriage {
    /// Sites matching generic WebRTC signatures.
    pub generic_matches: usize,
    /// Of those, ranked in the top 10K (dynamic analysis candidates).
    pub top10k_candidates: usize,
    /// Confirmed private PDN services.
    pub confirmed_private: usize,
    /// TURN-relayed platforms.
    pub turn_relayed: usize,
    /// WebRTC used for tracking.
    pub tracking: usize,
    /// Candidates with no triggerable traffic.
    pub untriggered: usize,
}

/// Full pipeline output.
#[derive(Debug)]
pub struct DetectionReport {
    /// Table I.
    pub table1: Vec<Table1Row>,
    /// Table II (confirmed websites, by popularity).
    pub table2: Vec<ConfirmedRow>,
    /// Table III (confirmed apps, by downloads).
    pub table3: Vec<ConfirmedRow>,
    /// Table IV (confirmed private services, by popularity).
    pub table4: Vec<PrivateRow>,
    /// §III-D triage funnel.
    pub triage: PrivateTriage,
    /// Extracted API keys (input to the free-riding field study).
    pub keys: Vec<ExtractedKey>,
    /// All potential-site detections (for downstream analyses).
    pub potential_sites: Vec<SiteDetection>,
    /// All potential-app detections.
    pub potential_apps: Vec<AppDetection>,
}

/// Runs the complete §III pipeline over `eco`.
pub fn run_pipeline(eco: &Ecosystem, rng: &mut SimRng) -> DetectionReport {
    run_pipeline_with_vantages(eco, &paper_vantages(), rng)
}

/// Runs the pipeline with an explicit vantage set.
pub fn run_pipeline_with_vantages(
    eco: &Ecosystem,
    vantages: &[Vantage],
    rng: &mut SimRng,
) -> DetectionReport {
    let scan = Scanner::new().scan(eco);
    let by_domain: HashMap<&str, &Website> = eco
        .websites
        .iter()
        .map(|w| (w.domain.as_str(), w))
        .collect();

    // ---- dynamic confirmation of public-provider detections ----
    // Candidates are independent, so the watch sessions run sharded in
    // parallel; one seed drawn from the pipeline RNG keeps the call
    // deterministic while preserving the single-RNG entry point.
    let workers = default_workers();
    let mut public_dets: Vec<&SiteDetection> = Vec::new();
    let mut generic_candidates: Vec<&SiteDetection> = Vec::new();
    for det in &scan.sites {
        if det.providers == [ProviderTag::GenericWebRtc] {
            generic_candidates.push(det);
        } else {
            public_dets.push(det);
        }
    }
    let public_sites: Vec<&Website> = public_dets
        .iter()
        .map(|det| by_domain[det.domain.as_str()])
        .collect();
    let public_outcomes = watch_sessions(&public_sites, vantages, rng.next_u64(), workers);
    let confirmed_sites: Vec<(&SiteDetection, ProviderTag)> = public_dets
        .iter()
        .zip(&public_outcomes)
        .filter(|(_, out)| out.verdict == DynamicVerdict::PdnConfirmed)
        .map(|(det, _)| (*det, det.providers[0].clone()))
        .collect();

    // ---- dynamic confirmation of apps (driven by trigger conditions;
    // apps are exercised in an emulator, same traffic detection) ----
    let app_truth: HashMap<&str, &crate::corpus::AndroidApp> =
        eco.apps.iter().map(|a| (a.package.as_str(), a)).collect();
    let mut confirmed_apps: Vec<(&AppDetection, ProviderTag)> = Vec::new();
    for det in &scan.apps {
        let app = app_truth[det.package.as_str()];
        let triggered = match app.trigger {
            Trigger::Always => true,
            Trigger::GeoRestricted(c) => vantages.iter().any(|v| v.country == c),
            _ => false,
        };
        if triggered {
            confirmed_apps.push((det, det.providers[0].clone()));
        }
    }

    // ---- Table I ----
    let providers = [
        ProviderTag::Peer5,
        ProviderTag::Streamroot,
        ProviderTag::Viblast,
    ];
    let table1 = providers
        .iter()
        .map(|p| {
            let pot_sites = scan
                .sites
                .iter()
                .filter(|s| s.providers.contains(p))
                .count();
            let conf_sites = confirmed_sites.iter().filter(|(_, q)| q == p).count();
            let pot_apps = scan.apps.iter().filter(|a| a.providers.contains(p)).count();
            let conf_apps = confirmed_apps.iter().filter(|(_, q)| q == p).count();
            let pot_apks: u32 = scan
                .apps
                .iter()
                .filter(|a| a.providers.contains(p))
                .map(|a| a.apk_versions)
                .sum();
            let conf_apks: u32 = confirmed_apps
                .iter()
                .filter(|(_, q)| q == p)
                .map(|(a, _)| a.apk_versions)
                .sum();
            Table1Row {
                provider: p.clone(),
                websites: (conf_sites, pot_sites),
                apps: (conf_apps, pot_apps),
                apks: (conf_apks, pot_apks),
            }
        })
        .collect();

    // ---- Tables II and III ----
    let mut table2: Vec<ConfirmedRow> = confirmed_sites
        .iter()
        .map(|(d, p)| ConfirmedRow {
            name: d.domain.clone(),
            provider: p.clone(),
            popularity: d.monthly_visits,
        })
        .collect();
    table2.sort_by(|a, b| b.popularity.cmp(&a.popularity).then(a.name.cmp(&b.name)));
    let mut table3: Vec<ConfirmedRow> = confirmed_apps
        .iter()
        .map(|(d, p)| ConfirmedRow {
            name: d.package.clone(),
            provider: p.clone(),
            popularity: d.downloads,
        })
        .collect();
    table3.sort_by(|a, b| b.popularity.cmp(&a.popularity).then(a.name.cmp(&b.name)));

    // ---- §III-D private triage + Table IV ----
    let mut triage = PrivateTriage {
        generic_matches: generic_candidates.len(),
        ..Default::default()
    };
    let mut table4 = Vec::new();
    let triage_dets: Vec<&SiteDetection> = generic_candidates
        .iter()
        .filter(|det| det.rank < 10_000)
        .copied()
        .collect();
    triage.top10k_candidates = triage_dets.len();
    let triage_sites: Vec<&Website> = triage_dets
        .iter()
        .map(|det| by_domain[det.domain.as_str()])
        .collect();
    let triage_outcomes = watch_sessions(&triage_sites, vantages, rng.next_u64(), workers);
    for ((det, site), out) in triage_dets.iter().zip(&triage_sites).zip(&triage_outcomes) {
        match out.verdict {
            DynamicVerdict::PdnConfirmed => {
                triage.confirmed_private += 1;
                let server = match &site.plant {
                    Some(Plant::Private { server_domain }) => server_domain.clone(),
                    _ => String::from("(unknown)"),
                };
                table4.push(PrivateRow {
                    domain: det.domain.clone(),
                    server,
                    monthly_visits: det.monthly_visits,
                });
            }
            DynamicVerdict::TurnRelayed => triage.turn_relayed += 1,
            DynamicVerdict::TrackingOnly => triage.tracking += 1,
            DynamicVerdict::NoTraffic => triage.untriggered += 1,
        }
    }
    table4.sort_by_key(|row| std::cmp::Reverse(row.monthly_visits));

    // ---- extracted keys ----
    let keys = scan
        .sites
        .iter()
        .filter_map(|s| {
            s.extracted_key.as_ref().map(|k| ExtractedKey {
                domain: s.domain.clone(),
                provider: s.providers[0].clone(),
                key: k.clone(),
            })
        })
        .collect();

    DetectionReport {
        table1,
        table2,
        table3,
        table4,
        triage,
        keys,
        potential_sites: scan.sites,
        potential_apps: scan.apps,
    }
}

impl DetectionReport {
    /// Renders Table I as ASCII.
    pub fn render_table1(&self) -> String {
        let mut out = String::from(
            "TABLE I: Detected PDN customers (confirmed/potential)\n\
             provider    | websites | apps   | APKs\n\
             ------------+----------+--------+---------\n",
        );
        let mut totals = ((0, 0), (0, 0), (0u32, 0u32));
        for r in &self.table1 {
            out.push_str(&format!(
                "{:<11} | {:>3}/{:<4} | {:>2}/{:<3} | {:>3}/{}\n",
                r.provider.to_string(),
                r.websites.0,
                r.websites.1,
                r.apps.0,
                r.apps.1,
                r.apks.0,
                r.apks.1
            ));
            totals.0 .0 += r.websites.0;
            totals.0 .1 += r.websites.1;
            totals.1 .0 += r.apps.0;
            totals.1 .1 += r.apps.1;
            totals.2 .0 += r.apks.0;
            totals.2 .1 += r.apks.1;
        }
        out.push_str(&format!(
            "{:<11} | {:>3}/{:<4} | {:>2}/{:<3} | {:>3}/{}\n",
            "Total", totals.0 .0, totals.0 .1, totals.1 .0, totals.1 .1, totals.2 .0, totals.2 .1
        ));
        out
    }

    /// Renders Table II/III-style confirmed-customer lists.
    pub fn render_confirmed(rows: &[ConfirmedRow], title: &str) -> String {
        let mut out = format!("{title}\n");
        for r in rows {
            let pop = match r.popularity {
                Some(v) if v >= 1_000_000 => format!("{}M", v / 1_000_000),
                Some(v) if v >= 1_000 => format!("{}K", v / 1_000),
                Some(v) => v.to_string(),
                None => "-".into(),
            };
            out.push_str(&format!(
                "{:<34} {:<11} {}\n",
                r.name,
                r.provider.to_string(),
                pop
            ));
        }
        out
    }

    /// Renders Table IV.
    pub fn render_table4(&self) -> String {
        let mut out = String::from("TABLE IV: Confirmed private PDN services\n");
        for r in &self.table4 {
            let pop = match r.monthly_visits {
                Some(v) => format!("{}M", v / 1_000_000),
                None => "-".into(),
            };
            out.push_str(&format!("{:<14} {:<45} {}\n", r.domain, r.server, pop));
        }
        out
    }
}

/// Re-export for downstream users that pick vantages explicitly.
pub use crate::dynamic::Vantage as PipelineVantage;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};

    fn report() -> DetectionReport {
        let mut rng = SimRng::seed(2024);
        let eco = generate(
            CorpusConfig {
                website_haystack: 500,
                app_haystack: 1_000,
                video_fraction: 0.4,
            },
            &mut rng,
        );
        run_pipeline(&eco, &mut rng)
    }

    #[test]
    fn table1_reproduces_paper_counts() {
        let r = report();
        let expect = [
            (ProviderTag::Peer5, (16, 60), (15, 31), (199, 548)),
            (ProviderTag::Streamroot, (1, 53), (3, 6), (53, 68)),
            (ProviderTag::Viblast, (0, 21), (0, 1), (0, 11)),
        ];
        for (provider, sites, apps, apks) in expect {
            let row = r.table1.iter().find(|x| x.provider == provider).unwrap();
            assert_eq!(row.websites, sites, "{provider} websites");
            assert_eq!(row.apps, apps, "{provider} apps");
            assert_eq!(row.apks, apks, "{provider} APKs");
        }
    }

    #[test]
    fn table2_has_17_rows_topped_by_rt() {
        let r = report();
        assert_eq!(r.table2.len(), 17);
        assert_eq!(r.table2[0].name, "rt.com");
        assert_eq!(r.table2[0].provider, ProviderTag::Streamroot);
        let over_1m = r
            .table2
            .iter()
            .filter(|x| x.popularity.unwrap_or(0) >= 1_000_000)
            .count();
        assert_eq!(
            over_1m, 10,
            "9 over 1M in the paper counts >1M strictly; \
                                 our seeded visits include 10 at >=1M"
        );
    }

    #[test]
    fn table3_has_18_rows_topped_by_iflix() {
        let r = report();
        assert_eq!(r.table3.len(), 18);
        assert_eq!(r.table3[0].name, "iflix.play");
        let over_1m = r
            .table3
            .iter()
            .filter(|x| x.popularity.unwrap_or(0) >= 1_000_000)
            .count();
        assert_eq!(over_1m, 11, "11 apps with over 1M downloads");
    }

    #[test]
    fn table4_and_triage_reproduce_section3d() {
        let r = report();
        assert_eq!(r.triage.generic_matches, 385);
        assert_eq!(r.triage.top10k_candidates, 57);
        assert_eq!(r.triage.confirmed_private, 10);
        assert_eq!(r.triage.turn_relayed, 2);
        assert_eq!(r.triage.tracking, 3);
        assert_eq!(r.triage.untriggered, 42);
        assert_eq!(r.table4.len(), 10);
        assert_eq!(r.table4[0].domain, "bilibili.com");
        assert!(r.table4.iter().any(|x| x.server == "wsproxy.douyu.com"));
    }

    #[test]
    fn keys_extracted_for_field_study() {
        let r = report();
        assert_eq!(r.keys.len(), 44);
        assert!(r.keys.iter().all(|k| !k.key.is_empty()));
    }

    #[test]
    fn us_only_vantage_misses_geo_restricted_services() {
        let mut rng = SimRng::seed(7);
        let eco = generate(CorpusConfig::default(), &mut rng);
        let us_only = run_pipeline_with_vantages(&eco, &[Vantage { country: "US" }], &mut rng);
        let mut rng2 = SimRng::seed(7);
        let eco2 = generate(CorpusConfig::default(), &mut rng2);
        let both = run_pipeline(&eco2, &mut rng2);
        assert!(
            us_only.triage.confirmed_private < both.triage.confirmed_private,
            "the China vantage is required for Douyu-style services"
        );
    }

    #[test]
    fn renders_are_nonempty() {
        let r = report();
        assert!(r.render_table1().contains("Peer5"));
        assert!(DetectionReport::render_confirmed(&r.table2, "TABLE II").contains("rt.com"));
        assert!(r.render_table4().contains("bilibili.com"));
    }
}

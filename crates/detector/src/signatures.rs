//! PDN SDK signatures (§III-C).
//!
//! The paper fingerprints PDN customers with "URL patterns (e.g.,
//! `api.peer5.com/peer5.js?id=*`), unique namespaces (e.g.,
//! `com.viblast.android`), and meta-data in the Android manifest file (e.g.
//! `io.streamroot.dna.StreamrootKey`)". The same signature database drives
//! both the website crawler and the APK scanner here.

/// Which provider a signature attributes to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum ProviderTag {
    /// Peer5.
    Peer5,
    /// Streamroot.
    Streamroot,
    /// Viblast.
    Viblast,
    /// Generic WebRTC machinery without a known provider — the candidate
    /// set from which private PDN services are confirmed (§III-D).
    GenericWebRtc,
}

impl std::fmt::Display for ProviderTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProviderTag::Peer5 => "Peer5",
            ProviderTag::Streamroot => "Streamroot",
            ProviderTag::Viblast => "Viblast",
            ProviderTag::GenericWebRtc => "WebRTC(generic)",
        };
        f.write_str(s)
    }
}

/// Where a signature is searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureKind {
    /// Substring of a page's HTML/JS (URL patterns, namespaces).
    PageContent,
    /// Key in an Android manifest.
    AndroidManifest,
    /// Java/Kotlin package namespace inside an APK.
    AndroidNamespace,
}

/// One signature.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Attributed provider.
    pub provider: ProviderTag,
    /// Where to search.
    pub kind: SignatureKind,
    /// The needle. `*` in URL patterns is handled by substring matching on
    /// the invariant prefix.
    pub needle: &'static str,
}

/// The built-in signature database from §III-C.
pub fn builtin_signatures() -> Vec<Signature> {
    use ProviderTag::*;
    use SignatureKind::*;
    vec![
        // Peer5
        Signature { provider: Peer5, kind: PageContent, needle: "api.peer5.com/peer5.js?id=" },
        Signature { provider: Peer5, kind: PageContent, needle: "window.peer5" },
        Signature { provider: Peer5, kind: AndroidNamespace, needle: "com.peer5.sdk" },
        Signature { provider: Peer5, kind: AndroidManifest, needle: "com.peer5.ApiKey" },
        // Streamroot
        Signature { provider: Streamroot, kind: PageContent, needle: "cdn.streamroot.io/dna" },
        Signature { provider: Streamroot, kind: PageContent, needle: "streamrootkey" },
        Signature { provider: Streamroot, kind: AndroidManifest, needle: "io.streamroot.dna.StreamrootKey" },
        Signature { provider: Streamroot, kind: AndroidNamespace, needle: "io.streamroot.dna" },
        // Viblast
        Signature { provider: Viblast, kind: PageContent, needle: "viblast.com/pdn/player.js" },
        Signature { provider: Viblast, kind: PageContent, needle: "viblast(" },
        Signature { provider: Viblast, kind: AndroidNamespace, needle: "com.viblast.android" },
        // Generic WebRTC (private PDN candidates)
        Signature { provider: GenericWebRtc, kind: PageContent, needle: "RTCPeerConnection" },
        Signature { provider: GenericWebRtc, kind: PageContent, needle: "createDataChannel" },
    ]
}

/// Result of matching `content` against the database.
pub fn match_page(signatures: &[Signature], content: &str) -> Vec<ProviderTag> {
    let lower = content.to_lowercase();
    let mut hits: Vec<ProviderTag> = signatures
        .iter()
        .filter(|s| s.kind == SignatureKind::PageContent)
        .filter(|s| lower.contains(&s.needle.to_lowercase()))
        .map(|s| s.provider.clone())
        .collect();
    hits.dedup();
    // Known-provider hits subsume generic WebRTC hits.
    if hits.iter().any(|p| *p != ProviderTag::GenericWebRtc) {
        hits.retain(|p| *p != ProviderTag::GenericWebRtc);
    }
    hits.sort_by_key(|p| format!("{p:?}"));
    hits.dedup();
    hits
}

/// Matches APK artifacts (manifest keys + namespaces).
pub fn match_apk(
    signatures: &[Signature],
    manifest_keys: &[String],
    namespaces: &[String],
) -> Vec<ProviderTag> {
    let mut hits: Vec<ProviderTag> = signatures
        .iter()
        .filter_map(|s| match s.kind {
            SignatureKind::AndroidManifest => manifest_keys
                .iter()
                .any(|k| k.contains(s.needle))
                .then(|| s.provider.clone()),
            SignatureKind::AndroidNamespace => namespaces
                .iter()
                .any(|n| n.starts_with(s.needle))
                .then(|| s.provider.clone()),
            SignatureKind::PageContent => None,
        })
        .collect();
    hits.sort_by_key(|p| format!("{p:?}"));
    hits.dedup();
    hits
}

/// Extracts a Peer5/Streamroot/Viblast-style API key from page content via
/// the regular-expression-like prefix matching of §IV-B. Returns `None`
/// for obfuscated or dynamically-loaded keys.
pub fn extract_api_key(content: &str) -> Option<String> {
    for marker in ["peer5.js?id=", "data-sr-key=\"", "viblast-key=\""] {
        if let Some(pos) = content.find(marker) {
            let rest = &content[pos + marker.len()..];
            let key: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            if !key.is_empty() {
                return Some(key);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_matching_attributes_providers() {
        let sigs = builtin_signatures();
        let html = r#"<script src="https://api.peer5.com/peer5.js?id=abc123"></script>"#;
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::Peer5]);
        let html = r#"<script src="https://cdn.streamroot.io/dna/latest.js"></script>"#;
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::Streamroot]);
        assert!(match_page(&sigs, "<html>plain page</html>").is_empty());
    }

    #[test]
    fn known_provider_subsumes_generic() {
        let sigs = builtin_signatures();
        let html = "new RTCPeerConnection(); api.peer5.com/peer5.js?id=x";
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::Peer5]);
        let html = "pc = new RTCPeerConnection(); pc.createDataChannel('x')";
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::GenericWebRtc]);
    }

    #[test]
    fn apk_matching() {
        let sigs = builtin_signatures();
        let tags = match_apk(
            &sigs,
            &["io.streamroot.dna.StreamrootKey".to_string()],
            &["com.example.app".to_string()],
        );
        assert_eq!(tags, vec![ProviderTag::Streamroot]);
        let tags = match_apk(
            &sigs,
            &[],
            &["com.viblast.android.player".to_string()],
        );
        assert_eq!(tags, vec![ProviderTag::Viblast]);
        assert!(match_apk(&sigs, &[], &[]).is_empty());
    }

    #[test]
    fn key_extraction() {
        assert_eq!(
            extract_api_key(r#"src="https://api.peer5.com/peer5.js?id=abcDEF123""#),
            Some("abcDEF123".into())
        );
        assert_eq!(
            extract_api_key(r#"<div data-sr-key="sr-key-42">"#),
            Some("sr-key-42".into())
        );
        // Obfuscated keys do not match the extractor.
        assert_eq!(extract_api_key("_0x101f38[_0x2c4aeb(0x234)]"), None);
    }
}

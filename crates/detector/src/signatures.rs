//! PDN SDK signatures (§III-C).
//!
//! The paper fingerprints PDN customers with "URL patterns (e.g.,
//! `api.peer5.com/peer5.js?id=*`), unique namespaces (e.g.,
//! `com.viblast.android`), and meta-data in the Android manifest file (e.g.
//! `io.streamroot.dna.StreamrootKey`)". The same signature database drives
//! both the website crawler and the APK scanner here.

/// Which provider a signature attributes to.
///
/// The derived `Ord` (declaration order) is the canonical sort order for
/// hit lists everywhere in the detector.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ProviderTag {
    /// Peer5.
    Peer5,
    /// Streamroot.
    Streamroot,
    /// Viblast.
    Viblast,
    /// Generic WebRTC machinery without a known provider — the candidate
    /// set from which private PDN services are confirmed (§III-D).
    GenericWebRtc,
}

impl std::fmt::Display for ProviderTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProviderTag::Peer5 => "Peer5",
            ProviderTag::Streamroot => "Streamroot",
            ProviderTag::Viblast => "Viblast",
            ProviderTag::GenericWebRtc => "WebRTC(generic)",
        };
        f.write_str(s)
    }
}

/// Where a signature is searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureKind {
    /// Substring of a page's HTML/JS (URL patterns, namespaces).
    PageContent,
    /// Key in an Android manifest.
    AndroidManifest,
    /// Java/Kotlin package namespace inside an APK.
    AndroidNamespace,
}

/// One signature.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Attributed provider.
    pub provider: ProviderTag,
    /// Where to search.
    pub kind: SignatureKind,
    /// The needle. `*` in URL patterns is handled by substring matching on
    /// the invariant prefix.
    pub needle: &'static str,
}

/// The built-in signature database from §III-C.
///
/// One entry per SDK artifact the paper's crawler fingerprints: loader
/// URLs, bundle names, global objects, key attributes, manifest keys, and
/// code namespaces — across the historical SDK versions of each provider
/// (the paper's database spans years of shipped SDKs, which is exactly the
/// regime where per-needle scanning stops scaling; see [`crate::matcher`]).
pub fn builtin_signatures() -> Vec<Signature> {
    use ProviderTag::*;
    use SignatureKind::*;
    vec![
        // ---- Peer5 ----
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "api.peer5.com/peer5.js?id=",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "window.peer5",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "cdn.peer5.com/peer5.min.js",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "api.peer5.com/analytics",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.js?auto=",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5-client",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5sdk",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.adapter",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5_config",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.Downloader",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.hlsjs",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.dashjs",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.videojs",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.silverlight",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "data-peer5-id=",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5loader",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.azureedge.net",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "api.peer5.com/stats",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.bootstrap",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.reporter",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.swarm",
        },
        Signature {
            provider: Peer5,
            kind: PageContent,
            needle: "peer5.jwplayer",
        },
        Signature {
            provider: Peer5,
            kind: AndroidNamespace,
            needle: "com.peer5.sdk",
        },
        Signature {
            provider: Peer5,
            kind: AndroidNamespace,
            needle: "com.peer5.embedded",
        },
        Signature {
            provider: Peer5,
            kind: AndroidManifest,
            needle: "com.peer5.ApiKey",
        },
        Signature {
            provider: Peer5,
            kind: AndroidManifest,
            needle: "com.peer5.sdk.LicenseKey",
        },
        // ---- Streamroot ----
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "cdn.streamroot.io/dna",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamrootkey",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "cdn.streamroot.io/dist",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "cdn.streamroot.io/mesh",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "window.Streamroot",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "data-streamroot-key=",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot-wrapper",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.hlsjs",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.shaka",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.dashjs",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamrootPropertyId",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.mesh",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamrootPeerAgent",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.io/lumen",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.config",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamrootDnaDebug",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.bootstrap",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.tracker",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.jwplayer",
        },
        Signature {
            provider: Streamroot,
            kind: PageContent,
            needle: "streamroot.analytics",
        },
        Signature {
            provider: Streamroot,
            kind: AndroidManifest,
            needle: "io.streamroot.dna.StreamrootKey",
        },
        Signature {
            provider: Streamroot,
            kind: AndroidManifest,
            needle: "io.streamroot.dna.DnaPropertyId",
        },
        Signature {
            provider: Streamroot,
            kind: AndroidNamespace,
            needle: "io.streamroot.dna",
        },
        Signature {
            provider: Streamroot,
            kind: AndroidNamespace,
            needle: "io.streamroot.lumen",
        },
        // ---- Viblast ----
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.com/pdn/player.js",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast(",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "cdn.viblast.com",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast-player.js",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast-key=",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.pdn",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblastLicense",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.setup",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast_endpoint",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.hls",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.talkback",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.swarm",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.bootstrap",
        },
        Signature {
            provider: Viblast,
            kind: PageContent,
            needle: "viblast.dash",
        },
        Signature {
            provider: Viblast,
            kind: AndroidNamespace,
            needle: "com.viblast.android",
        },
        Signature {
            provider: Viblast,
            kind: AndroidNamespace,
            needle: "com.viblast.player",
        },
        // ---- Generic WebRTC (private PDN candidates, §III-D) ----
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "RTCPeerConnection",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "createDataChannel",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "webkitRTCPeerConnection",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "mozRTCPeerConnection",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "ondatachannel",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "RTCDataChannel",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "peerConnection.createDataChannel",
        },
        Signature {
            provider: GenericWebRtc,
            kind: PageContent,
            needle: "RTCPeerConnection.generateCertificate",
        },
    ]
}

/// Result of matching `content` against the database.
///
/// This is the naive reference implementation — O(signatures × content)
/// with per-call lowercasing. The scan hot path uses the precompiled
/// [`crate::matcher::SignatureMatcher`] instead; this function is kept as
/// the specification the automaton is property-tested against (and as the
/// baseline for the `matcher_vs_naive` bench).
pub fn match_page(signatures: &[Signature], content: &str) -> Vec<ProviderTag> {
    // ASCII folding to match the byte-level automaton; the needles are all
    // ASCII, so Unicode-only case mappings cannot change the outcome on
    // either side.
    let lower = content.to_ascii_lowercase();
    let mut hits: Vec<ProviderTag> = signatures
        .iter()
        .filter(|s| s.kind == SignatureKind::PageContent)
        .filter(|s| lower.contains(&s.needle.to_ascii_lowercase()))
        .map(|s| s.provider.clone())
        .collect();
    // Known-provider hits subsume generic WebRTC hits.
    if hits.iter().any(|p| *p != ProviderTag::GenericWebRtc) {
        hits.retain(|p| *p != ProviderTag::GenericWebRtc);
    }
    // Sort before dedup: `dedup` only removes *adjacent* duplicates, so a
    // page matching one provider via two non-adjacent signatures would
    // otherwise report it twice.
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Matches APK artifacts (manifest keys + namespaces).
///
/// Reference implementation; see [`match_page`] and
/// [`crate::matcher::SignatureMatcher::match_apk`].
pub fn match_apk(
    signatures: &[Signature],
    manifest_keys: &[String],
    namespaces: &[String],
) -> Vec<ProviderTag> {
    let mut hits: Vec<ProviderTag> = signatures
        .iter()
        .filter_map(|s| match s.kind {
            SignatureKind::AndroidManifest => manifest_keys
                .iter()
                .any(|k| k.contains(s.needle))
                .then(|| s.provider.clone()),
            SignatureKind::AndroidNamespace => namespaces
                .iter()
                .any(|n| n.starts_with(s.needle))
                .then(|| s.provider.clone()),
            SignatureKind::PageContent => None,
        })
        .collect();
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Extracts a Peer5/Streamroot/Viblast-style API key from page content via
/// the regular-expression-like prefix matching of §IV-B. Returns `None`
/// for obfuscated or dynamically-loaded keys.
pub fn extract_api_key(content: &str) -> Option<String> {
    for marker in ["peer5.js?id=", "data-sr-key=\"", "viblast-key=\""] {
        if let Some(pos) = content.find(marker) {
            let rest = &content[pos + marker.len()..];
            let key: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            if !key.is_empty() {
                return Some(key);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_matching_attributes_providers() {
        let sigs = builtin_signatures();
        let html = r#"<script src="https://api.peer5.com/peer5.js?id=abc123"></script>"#;
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::Peer5]);
        let html = r#"<script src="https://cdn.streamroot.io/dna/latest.js"></script>"#;
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::Streamroot]);
        assert!(match_page(&sigs, "<html>plain page</html>").is_empty());
    }

    #[test]
    fn known_provider_subsumes_generic() {
        let sigs = builtin_signatures();
        let html = "new RTCPeerConnection(); api.peer5.com/peer5.js?id=x";
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::Peer5]);
        let html = "pc = new RTCPeerConnection(); pc.createDataChannel('x')";
        assert_eq!(match_page(&sigs, html), vec![ProviderTag::GenericWebRtc]);
    }

    #[test]
    fn apk_matching() {
        let sigs = builtin_signatures();
        let tags = match_apk(
            &sigs,
            &["io.streamroot.dna.StreamrootKey".to_string()],
            &["com.example.app".to_string()],
        );
        assert_eq!(tags, vec![ProviderTag::Streamroot]);
        let tags = match_apk(&sigs, &[], &["com.viblast.android.player".to_string()]);
        assert_eq!(tags, vec![ProviderTag::Viblast]);
        assert!(match_apk(&sigs, &[], &[]).is_empty());
    }

    #[test]
    fn key_extraction() {
        assert_eq!(
            extract_api_key(r#"src="https://api.peer5.com/peer5.js?id=abcDEF123""#),
            Some("abcDEF123".into())
        );
        assert_eq!(
            extract_api_key(r#"<div data-sr-key="sr-key-42">"#),
            Some("sr-key-42".into())
        );
        // Obfuscated keys do not match the extractor.
        assert_eq!(extract_api_key("_0x101f38[_0x2c4aeb(0x234)]"), None);
    }
}

//! # pdn-detector
//!
//! The large-scale PDN customer detection framework of §III of the
//! *Stealthy Peers* paper:
//!
//! - [`signatures`] — the SDK signature database (URL patterns, JS
//!   namespaces, Android manifest keys) and API key extraction;
//! - [`corpus`] — a synthetic web/app ecosystem with planted PDN customers
//!   standing in for Tranco-300K + Androzoo (see DESIGN.md substitutions);
//! - [`matcher`] — the case-folded Aho–Corasick automaton the scanner's
//!   hot path compiles the signature database into;
//! - [`scanner`] — the static crawler (depth-3 subpage walk) and APK
//!   scanner producing *potential* customers, sharded across threads;
//! - [`traffic`] — the capture analyzer recognising PDN traffic as STUN
//!   binding requests followed by DTLS between candidate peers;
//! - [`dynamic`] — per-site watch sessions and vantage handling;
//! - [`tables`] — the end-to-end pipeline reassembling Tables I–IV.
//!
//! # Examples
//!
//! ```
//! use pdn_detector::{corpus, tables};
//! use pdn_simnet::SimRng;
//!
//! let mut rng = SimRng::seed(1);
//! let eco = corpus::generate(corpus::CorpusConfig::default(), &mut rng);
//! let report = tables::run_pipeline(&eco, &mut rng);
//! assert_eq!(report.table2.len(), 17); // confirmed PDN websites
//! assert_eq!(report.table4.len(), 10); // confirmed private services
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dynamic;
pub mod matcher;
pub mod scanner;
pub mod signatures;
pub mod tables;
pub mod traffic;

pub use corpus::{CorpusConfig, Ecosystem};
pub use scanner::Scanner;
pub use signatures::ProviderTag;
pub use tables::{run_pipeline, DetectionReport};
pub use traffic::{analyze_capture, TrafficReport};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use pdn_simnet::SimRng;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The pipeline's Table I is invariant to haystack size and seed:
        /// plants are always recovered, haystack never pollutes counts.
        #[test]
        fn table1_invariant_to_haystack(seed in any::<u64>(), haystack in 0usize..2000) {
            let mut rng = SimRng::seed(seed);
            let eco = corpus::generate(
                corpus::CorpusConfig {
                    website_haystack: haystack,
                    app_haystack: haystack,
                    video_fraction: 0.3,
                },
                &mut rng,
            );
            let report = tables::run_pipeline(&eco, &mut rng);
            let total_potential: usize = report.table1.iter().map(|r| r.websites.1).sum();
            let total_confirmed: usize = report.table1.iter().map(|r| r.websites.0).sum();
            prop_assert_eq!(total_potential, 134);
            prop_assert_eq!(total_confirmed, 17);
        }
    }
}

#[cfg(test)]
mod paper_scale_tests {
    use super::*;
    use pdn_simnet::SimRng;

    /// The full 68,757-domain / 1.5M-APK scale of §III-C. Slow; run with
    /// `cargo test -p pdn-detector -- --ignored`.
    #[test]
    #[ignore = "paper-scale corpus: several minutes"]
    fn full_scale_pipeline() {
        let mut rng = SimRng::seed(1);
        let eco = corpus::generate(corpus::CorpusConfig::paper_scale(), &mut rng);
        assert!(eco.apps.len() >= 1_500_000);
        let report = tables::run_pipeline(&eco, &mut rng);
        let sites: usize = report.table1.iter().map(|r| r.websites.1).sum();
        assert_eq!(sites, 134);
        assert_eq!(report.table4.len(), 10);
    }
}

//! Benchmarks of the §IV attack experiments: free riding (Table V rows 1–2
//! and the billing amplification), content pollution (rows 3–4), the IP
//! leak harvest, and the Figure 4/5 resource experiments.
//!
//! Each iteration runs a complete simulated experiment, so these double as
//! regression checks on experiment wall-time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdn_core::pollution::PollutionMode;
use pdn_provider::{MatchingPolicy, ProviderProfile};
use std::hint::black_box;

fn bench_freeriding(c: &mut Criterion) {
    let profile = ProviderProfile::peer5();
    c.bench_function("freeriding/cross_domain_attack", |b| {
        b.iter(|| pdn_core::freeriding::cross_domain_attack(black_box(&profile), false, 1))
    });
    c.bench_function("freeriding/domain_spoofing_attack", |b| {
        b.iter(|| pdn_core::freeriding::domain_spoofing_attack(black_box(&profile), 1))
    });
}

fn bench_pollution(c: &mut Criterion) {
    let profile = ProviderProfile::peer5();
    let mut g = c.benchmark_group("pollution");
    g.bench_function("direct", |b| {
        b.iter(|| pdn_core::pollution::run_pollution(&profile, PollutionMode::Direct, 1, 2))
    });
    g.bench_function("segment", |b| {
        b.iter(|| {
            pdn_core::pollution::run_pollution(
                &profile,
                PollutionMode::FromSeq(profile.slow_start_segments),
                1,
                2,
            )
        })
    });
    g.finish();
}

fn bench_ip_leak(c: &mut Criterion) {
    let mut g = c.benchmark_group("ip_leak");
    for days in [1u64, 7] {
        g.bench_with_input(BenchmarkId::new("huya_wild", days), &days, |b, &d| {
            b.iter(|| {
                pdn_core::ip_leak::run_wild(
                    &pdn_core::ip_leak::huya_population(),
                    MatchingPolicy::Global,
                    "US",
                    d as f64,
                    1,
                )
            })
        });
    }
    g.finish();
}

fn bench_squatting(c: &mut Criterion) {
    let profile = ProviderProfile::peer5();
    c.bench_function("squatting/figure4_60s", |b| {
        b.iter(|| pdn_core::squatting::resource_consumption(black_box(&profile), 60, 3))
    });
    c.bench_function("squatting/figure5_3points_45s", |b| {
        b.iter(|| pdn_core::squatting::bandwidth_scaling(black_box(&profile), 3, 45, 3))
    });
}

fn bench_economics(c: &mut Criterion) {
    let profile = ProviderProfile::peer5();
    c.bench_function("economics/offload_5_viewers", |b| {
        b.iter(|| pdn_core::economics::offload_curve(black_box(&profile), &[5], 4))
    });
    c.bench_function("economics/cost_amplification_4", |b| {
        b.iter(|| pdn_core::economics::cost_amplification(black_box(&profile), 4, 4))
    });
    c.bench_function("pollution/propagation_6_victims", |b| {
        b.iter(|| pdn_core::pollution::propagation_study(black_box(&profile), 6, 4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freeriding, bench_pollution, bench_ip_leak, bench_squatting, bench_economics
}
criterion_main!(benches);

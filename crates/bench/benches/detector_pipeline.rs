//! Benchmarks of the §III detection pipeline (Tables I–IV): corpus
//! generation, static scan, dynamic confirmation, and the full funnel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdn_detector::{corpus, tables, Scanner};
use pdn_simnet::SimRng;
use std::hint::black_box;

fn bench_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    for haystack in [1_000usize, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("generate", haystack),
            &haystack,
            |b, &n| {
                b.iter(|| {
                    let mut rng = SimRng::seed(1);
                    corpus::generate(
                        corpus::CorpusConfig {
                            website_haystack: n,
                            app_haystack: n,
                            video_fraction: 0.3,
                        },
                        &mut rng,
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut rng = SimRng::seed(2);
    let eco = corpus::generate(corpus::CorpusConfig::default(), &mut rng);
    c.bench_function("scanner/static_scan_default_corpus", |b| {
        let scanner = Scanner::new();
        b.iter(|| scanner.scan(black_box(&eco)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("pipeline/tables_1_to_4", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed(3);
            let eco = corpus::generate(
                corpus::CorpusConfig {
                    website_haystack: 2_000,
                    app_haystack: 5_000,
                    video_fraction: 0.3,
                },
                &mut rng,
            );
            tables::run_pipeline(black_box(&eco), &mut rng)
        })
    });
}

fn bench_traffic_analysis(c: &mut Criterion) {
    // Analyze a real capture produced by a live PDN world.
    use pdn_provider::world::demo_world;
    use pdn_simnet::SimTime;
    let (mut world, _) = demo_world(4);
    world.net_mut().set_capture(true);
    world.run_until(SimTime::from_secs(60));
    let frames = world.net().capture().to_vec();
    let infra = [
        world.stun_addr().ip,
        world.signal_addr().ip,
        world.cdn_addr().ip,
    ];
    c.bench_function("traffic/analyze_world_capture", |b| {
        b.iter(|| pdn_detector::analyze_capture(black_box(&frames), &infra))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus, bench_scan, bench_pipeline, bench_traffic_analysis
}
criterion_main!(benches);

//! Microbenchmarks of the substrate primitives: crypto throughput, STUN
//! codec, DTLS record processing, segment generation, and manifest
//! parsing. These are the per-byte costs underlying the Figure 4 / Table
//! VI overhead model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for size in [1_024usize, 65_536, 1_048_576] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| pdn_crypto::sha256::digest(black_box(d)))
        });
        g.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, d| {
            b.iter(|| pdn_crypto::hmac::hmac_sha256(b"key", black_box(d)))
        });
        g.bench_with_input(BenchmarkId::new("md5", size), &data, |b, d| {
            b.iter(|| pdn_crypto::md5::digest(black_box(d)))
        });
    }
    g.finish();

    c.bench_function("jwt/sign_listing1", |b| {
        let token = pdn_provider::auth::PdnToken {
            customer_id: "xx.yy".into(),
            pdn_peer_id: "1".into(),
            video_ids: vec![
                "https://xx.yy/zz.m3u8".into(),
                "https://xx.yy/hh.m3u8".into(),
            ],
            timestamp: 1_619_814_238,
            ttl: 60,
            usage_limit: 1,
        };
        b.iter(|| black_box(&token).sign(b"provider-secret"))
    });
    c.bench_function("jwt/verify_listing1", |b| {
        let token = pdn_provider::auth::PdnToken {
            customer_id: "xx.yy".into(),
            pdn_peer_id: "1".into(),
            video_ids: vec!["https://xx.yy/zz.m3u8".into()],
            timestamp: 1_619_814_238,
            ttl: 60,
            usage_limit: 1,
        };
        let jwt = token.sign(b"provider-secret");
        b.iter(|| {
            pdn_crypto::jwt::verify::<pdn_provider::auth::PdnToken>(
                black_box(&jwt),
                b"provider-secret",
            )
            .unwrap()
        })
    });
}

fn bench_stun(c: &mut Criterion) {
    use pdn_webrtc::stun::{Attribute, Message};
    let msg = Message::binding_request([7; 12])
        .with(Attribute::Username("remote:local".into()))
        .with(Attribute::Priority(12345))
        .with(Attribute::MessageIntegrity([9; 32]));
    let wire = msg.encode();
    c.bench_function("stun/encode", |b| b.iter(|| black_box(&msg).encode()));
    c.bench_function("stun/decode", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });
    c.bench_function("stun/is_stun_sniff", |b| {
        b.iter(|| pdn_webrtc::stun::is_stun(black_box(&wire)))
    });
}

fn bench_dtls(c: &mut Criterion) {
    use pdn_simnet::SimRng;
    use pdn_webrtc::{dtls, Certificate, DtlsEndpoint};
    let mut rng = SimRng::seed(1);
    let cc = Certificate::generate(&mut rng);
    let sc = Certificate::generate(&mut rng);
    c.bench_function("dtls/handshake", |b| {
        b.iter(|| {
            let mut r = SimRng::seed(2);
            let (mut client, hello) =
                DtlsEndpoint::client(cc.clone(), Some(sc.fingerprint()), &mut r);
            let mut server = DtlsEndpoint::server(sc.clone(), None, &mut r);
            dtls::handshake(&mut client, hello, &mut server, &mut r).unwrap();
            black_box((client, server))
        })
    });

    let mut r = SimRng::seed(3);
    let (mut client, hello) = DtlsEndpoint::client(cc.clone(), Some(sc.fingerprint()), &mut r);
    let mut server = DtlsEndpoint::server(sc, None, &mut r);
    dtls::handshake(&mut client, hello, &mut server, &mut r).unwrap();
    let payload = vec![0u8; 16_000];
    let mut g = c.benchmark_group("dtls_records");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("seal_16k", |b| {
        b.iter(|| client.seal(black_box(&payload)).unwrap())
    });
    g.finish();
}

fn bench_media(c: &mut Criterion) {
    use pdn_media::{MediaPlaylist, VideoSource};
    use std::time::Duration;
    let src = VideoSource::vod("bench", vec![2_400_000], Duration::from_secs(10), 60);
    let mut g = c.benchmark_group("media");
    g.throughput(Throughput::Bytes(src.segment_size(0) as u64));
    g.bench_function("segment_generation_3mb", |b| {
        b.iter(|| src.segment(0, black_box(7)).unwrap())
    });
    g.finish();

    let playlist = MediaPlaylist::for_source(&src, 0, 0, 60).encode();
    c.bench_function("media/manifest_parse_60", |b| {
        b.iter(|| MediaPlaylist::parse(black_box(&playlist)).unwrap())
    });

    let seg = src.segment(0, 7).unwrap();
    c.bench_function("media/compute_im_3mb", |b| {
        b.iter(|| pdn_provider::compute_im(black_box(&seg.data), "bench", 0, 7))
    });
}

fn bench_scan(c: &mut Criterion) {
    use pdn_detector::corpus::{generate, CorpusConfig};
    use pdn_detector::scanner::default_workers;
    use pdn_detector::Scanner;
    use pdn_simnet::SimRng;

    let mut rng = SimRng::seed(11);
    let eco = generate(
        CorpusConfig {
            website_haystack: 10_000,
            app_haystack: 1_000,
            video_fraction: 0.4,
        },
        &mut rng,
    );
    let scanner = Scanner::new();
    // The two paths must agree before their speeds mean anything.
    assert_eq!(scanner.scan_naive(&eco), scanner.scan(&eco));

    let mut g = c.benchmark_group("scan_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(eco.websites.len() as u64));
    g.bench_function("naive_serial", |b| {
        b.iter(|| scanner.scan_naive(black_box(&eco)))
    });
    g.bench_function("matcher_serial", |b| {
        b.iter(|| scanner.scan_with_workers(black_box(&eco), 1))
    });
    g.bench_function(
        BenchmarkId::new("matcher_sharded", default_workers()),
        |b| b.iter(|| scanner.scan(black_box(&eco))),
    );
    g.finish();
}

fn bench_matcher(c: &mut Criterion) {
    use pdn_detector::matcher::SignatureMatcher;
    use pdn_detector::signatures::{builtin_signatures, match_page};

    // A realistic page: ~8 KB of filler with one signature near the end.
    let mut page = String::new();
    while page.len() < 8_000 {
        page.push_str("<script>var player = initPlayer({autoplay: true});</script>\n");
    }
    page.push_str(r#"<script src="https://api.peer5.com/peer5.js?id=abc123"></script>"#);
    let sigs = builtin_signatures();
    let matcher = SignatureMatcher::new(&sigs);
    assert_eq!(matcher.match_page(&page), match_page(&sigs, &page));

    let mut g = c.benchmark_group("matcher_vs_naive");
    g.throughput(Throughput::Bytes(page.len() as u64));
    g.bench_function("naive_contains", |b| {
        b.iter(|| match_page(black_box(&sigs), black_box(&page)))
    });
    g.bench_function("aho_corasick", |b| {
        b.iter(|| matcher.match_page(black_box(&page)))
    });
    g.finish();
}

fn bench_send_path(c: &mut Criterion) {
    use bytes::Bytes;
    use pdn_simnet::{Addr, GeoInfo, LinkSpec, Network, Transport};

    let mut net = Network::new(9);
    net.set_capture(true);
    let a = net.add_public_host(GeoInfo::new("US", 1, "AS1"), LinkSpec::residential());
    let b_node = net.add_public_host(GeoInfo::new("US", 1, "AS1"), LinkSpec::residential());
    let dst = Addr::from_ip(net.ip(b_node), 80);
    let payload = Bytes::from(vec![0x5a; 1_200]);

    let mut g = c.benchmark_group("send_path");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("udp_1200b_captured", |b| {
        b.iter(|| {
            // The payload clone is a refcount bump (see the simnet
            // `non_rewrite_send_path_never_copies_the_payload` test).
            let out = net.send(a, 5000, dst, Transport::Udp, payload.clone());
            let _ = net.step();
            if net.capture().len() > 4_096 {
                net.clear_capture();
            }
            black_box(out)
        })
    });
    g.finish();
}

fn bench_route(c: &mut Criterion) {
    use pdn_simnet::{RouteTable, SimRng};
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    // A large simulated world's worth of public routes.
    let mut rng = SimRng::seed(13);
    let ips: Vec<Ipv4Addr> = (0..10_000u32)
        .map(|_| Ipv4Addr::from(rng.next_u64() as u32))
        .collect();
    let mut table = RouteTable::new();
    let mut map = HashMap::new();
    for (i, &ip) in ips.iter().enumerate() {
        table.insert(ip, i);
        map.insert(ip, i);
    }
    // Probe with the 90%-hit mix of the datagram path.
    let probes: Vec<Ipv4Addr> = (0..1_024)
        .map(|_| {
            if rng.chance(0.9) {
                ips[rng.range(0..ips.len() as u64) as usize]
            } else {
                Ipv4Addr::from(rng.next_u64() as u32)
            }
        })
        .collect();

    let mut g = c.benchmark_group("route_lookup");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("sorted_vec_10k", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter_map(|&ip| table.get(black_box(ip)))
                .count()
        })
    });
    g.bench_function("hashmap_10k", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter_map(|ip| map.get(black_box(ip)))
                .count()
        })
    });
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    use pdn_simnet::{Event, EventQueue, HeapMapQueue, NodeId, SimRng, SimTime};
    use std::time::Duration;

    // Steady-state churn: pop one, push one, 4096 in flight — the event
    // loop's shape once a swarm is warmed up.
    const OPS: u64 = 10_000;
    let delays: Vec<u64> = {
        let mut rng = SimRng::seed(21);
        (0..OPS)
            .map(|_| {
                if rng.chance(0.95) {
                    rng.range(0..50_000_000)
                } else {
                    rng.range(0..5_000_000_000)
                }
            })
            .collect()
    };
    let timer = |token: u64| Event::Timer {
        node: NodeId(0),
        token,
    };

    let mut g = c.benchmark_group("event_queue_churn");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("calendar_queue", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..4_096u64 {
                q.push(
                    SimTime::from_nanos(delays[i as usize % delays.len()]),
                    timer(i),
                );
            }
            for &d in &delays {
                let (now, _) = q.pop().expect("primed");
                q.push(now + Duration::from_nanos(d), timer(0));
            }
            while q.pop().is_some() {}
        })
    });
    g.bench_function("heap_plus_hashmap", |b| {
        b.iter(|| {
            let mut q = HeapMapQueue::new();
            for i in 0..4_096u64 {
                q.push(
                    SimTime::from_nanos(delays[i as usize % delays.len()]),
                    timer(i),
                );
            }
            for &d in &delays {
                let (now, _) = q.pop().expect("primed");
                q.push(now + Duration::from_nanos(d), timer(0));
            }
            while q.pop().is_some() {}
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crypto, bench_stun, bench_dtls, bench_media, bench_scan,
        bench_matcher, bench_send_path, bench_route, bench_queue
}
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - slow-start depth vs pollution exposure;
//! - IM reporter quorum vs pollution-survival probability;
//! - peer-matching scope vs offload/leak trade-off;
//! - token TTL vs replay window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdn_core::pollution::PollutionMode;
use pdn_provider::{MatchingPolicy, ProviderProfile};

/// Slow-start depth K: pollution can only touch segments past K, so deeper
/// slow starts shrink the attack surface at higher CDN cost.
fn ablation_slowstart(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_slowstart");
    g.sample_size(10);
    for k in [1u64, 3, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut profile = ProviderProfile::peer5();
                profile.slow_start_segments = k;
                pdn_core::pollution::run_pollution(&profile, PollutionMode::FromSeq(k), 1, 7)
            })
        });
    }
    g.finish();
}

/// IM reporter quorum k: pollution survives only if all k reporters are
/// malicious (analytic), while server conflict-resolution cost scales with
/// the number of distinct segments attacked (measured).
fn ablation_im_reporters(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_im_reporters");
    g.sample_size(10);
    for attackers in [5usize, 20] {
        g.bench_with_input(
            BenchmarkId::new("fake_im_flood", attackers),
            &attackers,
            |b, &n| b.iter(|| pdn_core::defense::integrity::fake_im_flood(n, 8)),
        );
    }
    g.finish();
}

/// Matching scope: global matching maximizes leak; country/ISP matching
/// trades neighbor availability for privacy.
fn ablation_peer_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_peer_matching");
    g.sample_size(10);
    for (label, policy) in [
        ("global", MatchingPolicy::Global),
        ("country", MatchingPolicy::SameCountry),
        ("isp", MatchingPolicy::SameIsp),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &p| {
            b.iter(|| {
                pdn_core::ip_leak::run_wild(
                    &pdn_core::ip_leak::rt_news_population(),
                    p,
                    "US",
                    1.0,
                    9,
                )
            })
        });
    }
    g.finish();
}

/// Token TTL: shorter TTLs shrink the replay window; the bench measures
/// validator throughput across TTL settings (the check is O(1) either
/// way — the ablation documents that the *security* knob is free).
fn ablation_token_ttl(c: &mut Criterion) {
    use pdn_media::VideoId;
    use pdn_provider::auth::{unix_time, PdnToken, TokenValidator};
    use pdn_simnet::SimTime;
    let mut g = c.benchmark_group("ablation_token_ttl");
    g.sample_size(20);
    for ttl in [10u64, 60, 3600] {
        g.bench_with_input(BenchmarkId::from_parameter(ttl), &ttl, |b, &ttl| {
            let token = PdnToken {
                customer_id: "xx.yy".into(),
                pdn_peer_id: "1".into(),
                video_ids: vec!["https://xx.yy/zz.m3u8".into()],
                timestamp: unix_time(SimTime::ZERO),
                ttl,
                usage_limit: u32::MAX,
            };
            let jwt = token.sign(b"k");
            let video = VideoId::new("https://xx.yy/zz.m3u8");
            let mut validator = TokenValidator::new(b"k".to_vec());
            b.iter(|| {
                validator
                    .validate(&jwt, &video, SimTime::from_secs(1))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_slowstart, ablation_im_reporters, ablation_peer_matching, ablation_token_ttl
}
criterion_main!(benches);

//! Benchmarks of the §V defense evaluations: the disposable-token flow
//! (§V-A), the Table VI integrity-checking groups (§V-B), the fake-IM
//! flood, and the TURN-relay mitigation (§V-C).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_token(c: &mut Criterion) {
    c.bench_function("defense/token_full_evaluation", |b| {
        b.iter(|| pdn_core::defense::token::evaluate(1))
    });
}

fn bench_integrity(c: &mut Criterion) {
    c.bench_function("defense/table6_group_pdn_im_60s", |b| {
        // One hardened-group run (the heaviest Table VI cell).
        b.iter(|| pdn_core::defense::integrity::table_vi(60, 2))
    });
    c.bench_function("defense/fake_im_flood_20", |b| {
        b.iter(|| pdn_core::defense::integrity::fake_im_flood(20, 3))
    });
}

fn bench_privacy(c: &mut Criterion) {
    c.bench_function("defense/turn_relay_100x16k", |b| {
        b.iter(|| pdn_core::defense::privacy::evaluate_turn_relay(100, 16_000, 4))
    });
    c.bench_function("defense/same_country_matching_1day", |b| {
        b.iter(|| {
            pdn_core::ip_leak::run_wild(
                &pdn_core::ip_leak::rt_news_population(),
                pdn_provider::MatchingPolicy::SameCountry,
                "US",
                1.0,
                5,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_token, bench_integrity, bench_privacy
}
criterion_main!(benches);

//! Ablation sweeps as a pooled workload.
//!
//! The criterion benches in `benches/ablations.rs` *time* the design-knob
//! sweeps; this module *runs* them as a single flat list of independent
//! worlds so they can fan out across a [`WorldPool`] and render to a
//! deterministic report — the workload half of `sim_bench` and the
//! subject of the determinism test.

use pdn_core::defense::integrity;
use pdn_core::defense::privacy;
use pdn_core::ip_leak::{self, rt_news_population};
use pdn_core::pollution::{self, PollutionMode};
use pdn_core::worldpool::{derive_seed, WorldPool};
use pdn_provider::{MatchingPolicy, ProviderProfile};

/// Scope of an ablation run.
#[derive(Debug, Clone, Copy)]
pub struct AblationConfig {
    /// Wild-harvest duration per matching-policy point, in days.
    pub harvest_days: f64,
    /// Whether to include the (slow) TURN relay-mode world.
    pub include_relay: bool,
}

impl AblationConfig {
    /// The full sweep `sim_bench` times.
    pub fn full() -> Self {
        AblationConfig {
            harvest_days: 1.0,
            include_relay: true,
        }
    }

    /// A trimmed sweep for tests: shorter harvests, no relay world.
    pub fn quick() -> Self {
        AblationConfig {
            harvest_days: 0.25,
            include_relay: false,
        }
    }
}

/// One ablation sweep point: a label plus an independent world to run.
enum Point {
    Slowstart(u64),
    Matching(&'static str, MatchingPolicy),
    Flood(usize),
    Relay,
}

impl Point {
    fn run(&self, cfg: &AblationConfig, seed: u64) -> String {
        match self {
            Point::Slowstart(k) => {
                let mut profile = ProviderProfile::peer5();
                profile.slow_start_segments = *k;
                let r = pollution::run_pollution(&profile, PollutionMode::FromSeq(*k), 2, seed);
                format!(
                    "slowstart k={k}: polluted={} tainted={}/{}",
                    r.attack_succeeded(),
                    r.victim_polluted_played,
                    r.victim_total_played
                )
            }
            Point::Matching(label, policy) => {
                let r =
                    ip_leak::run_wild(&rt_news_population(), *policy, "US", cfg.harvest_days, seed);
                format!(
                    "matching {label}: uniques={} countries={} bogons={}",
                    r.unique_ips,
                    r.countries.len(),
                    r.bogons
                )
            }
            Point::Flood(attackers) => {
                let f = integrity::fake_im_flood(*attackers, 8);
                format!(
                    "im_flood n={attackers}: reports={} refetches={} blacklisted={}",
                    f.fake_reports, f.cdn_refetches, f.blacklisted
                )
            }
            Point::Relay => {
                let (p2p, relayed, leaked) = privacy::evaluate_relay_world(seed);
                format!("relay: p2p={p2p} relayed={relayed} leaked={leaked}")
            }
        }
    }
}

/// The rendered sweep: one line per point, in sweep order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AblationReport {
    /// One `"name: result"` line per sweep point.
    pub lines: Vec<String>,
}

impl AblationReport {
    /// Renders the whole sweep as one string (the determinism-test unit).
    pub fn render(&self) -> String {
        let mut out = String::from("ABLATIONS\n");
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// Runs every ablation sweep point as an independent world on `pool`.
///
/// Point `i` gets seed `derive_seed(seed, i)`, so the report is a pure
/// function of `(cfg, seed)` — identical at any worker count.
pub fn ablation_suite(cfg: AblationConfig, seed: u64, pool: &WorldPool) -> AblationReport {
    let mut points = vec![
        Point::Slowstart(1),
        Point::Slowstart(3),
        Point::Slowstart(6),
        Point::Matching("global", MatchingPolicy::Global),
        Point::Matching("country", MatchingPolicy::SameCountry),
        Point::Matching("isp", MatchingPolicy::SameIsp),
        Point::Flood(5),
        Point::Flood(20),
    ];
    if cfg.include_relay {
        points.push(Point::Relay);
    }
    let lines = pool.run(points.len(), |i| {
        points[i].run(&cfg, derive_seed(seed, i as u64))
    });
    AblationReport { lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_deterministic_and_labelled() {
        let a = ablation_suite(AblationConfig::quick(), 42, &WorldPool::serial());
        let b = ablation_suite(AblationConfig::quick(), 42, &WorldPool::new(4));
        assert_eq!(a.render(), b.render());
        assert_eq!(a.lines.len(), 8);
        assert!(a.render().contains("slowstart k=1"));
        assert!(a.render().contains("matching isp"));
    }
}

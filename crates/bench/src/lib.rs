//! # pdn-bench
//!
//! The reproduction harness: one entry point per table and figure of the
//! *Stealthy Peers* paper. The `tables` binary prints them; the criterion
//! benches in `benches/` time them.
//!
//! | artifact | function |
//! |----------|----------|
//! | Table I–IV | [`detection_report`] |
//! | Table V | [`table5`] |
//! | Table VI | [`table6`] |
//! | Figure 4 | [`figure4`] |
//! | Figure 5 | [`figure5`] |
//! | §IV-B field study | [`freeriding_study`] |
//! | §IV-D wild harvest | [`ip_leak_wild`] |
//! | §V-A token | [`token_defense`] |
//! | §V-C mitigations | [`privacy_mitigation`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;

use pdn_core::ip_leak::{huya_population, rt_news_population, run_wild_trials, WildTrial};
use pdn_core::riskmatrix::{build_matrix_pooled, ProviderKeyCounts, RiskMatrix};
use pdn_core::WorldPool;
use pdn_detector::{corpus, tables, DetectionReport};
use pdn_provider::{MatchingPolicy, ProviderProfile};
use pdn_simnet::SimRng;

/// The deterministic seed every reproduction run uses.
pub const SEED: u64 = 20_240_624;

/// Runs the §III pipeline (Tables I–IV) on the default-scale corpus.
pub fn detection_report(seed: u64) -> (corpus::Ecosystem, DetectionReport) {
    let mut rng = SimRng::seed(seed);
    let eco = corpus::generate(corpus::CorpusConfig::default(), &mut rng);
    let report = tables::run_pipeline(&eco, &mut rng);
    (eco, report)
}

/// Runs the §IV-B key field study on a fresh corpus.
pub fn freeriding_study(seed: u64) -> pdn_core::KeyFieldStudy {
    let (eco, report) = detection_report(seed);
    pdn_core::freeriding::key_field_study(&eco, &report.keys)
}

/// Builds Table V for the three public providers, with field-study key
/// counts.
pub fn table5(seed: u64) -> RiskMatrix {
    table5_pooled(seed, &WorldPool::auto())
}

/// [`table5`] with an explicit [`WorldPool`]: each provider×test cell
/// runs as an independent world, byte-identical at any worker count.
pub fn table5_pooled(seed: u64, pool: &WorldPool) -> RiskMatrix {
    let study = freeriding_study(seed);
    let profiles = [
        ProviderProfile::peer5(),
        ProviderProfile::streamroot(),
        ProviderProfile::viblast(),
    ];
    // The per-provider split of the aggregate study follows the §IV-B
    // corpus plan (36/1/3 valid keys; 11/0/0 without allowlist), which the
    // aggregate run verifies end to end.
    debug_assert_eq!(study.valid, 40);
    let counts = move |name: &str| match name {
        "Peer5" => Some(ProviderKeyCounts {
            valid: 36,
            cross_domain_vulnerable: 11,
        }),
        "Streamroot" => Some(ProviderKeyCounts {
            valid: 1,
            cross_domain_vulnerable: 0,
        }),
        "Viblast" => Some(ProviderKeyCounts {
            valid: 3,
            cross_domain_vulnerable: 0,
        }),
        _ => None,
    };
    build_matrix_pooled(&profiles, counts, seed, pool)
}

/// Runs the Table VI control groups (`secs` simulated seconds per group).
pub fn table6(secs: u64, seed: u64) -> pdn_core::defense::integrity::TableVI {
    pdn_core::defense::integrity::table_vi(secs, seed)
}

/// Runs the Figure 4 experiment.
pub fn figure4(secs: u64, seed: u64) -> pdn_core::ResourceFigure {
    pdn_core::squatting::resource_consumption(&ProviderProfile::peer5(), secs, seed)
}

/// Runs the Figure 5 sweep.
pub fn figure5(max_neighbors: usize, secs: u64, seed: u64) -> Vec<pdn_core::BandwidthPoint> {
    pdn_core::squatting::bandwidth_scaling(&ProviderProfile::peer5(), max_neighbors, secs, seed)
}

/// The two measured channels as a trial pair under one matching policy,
/// with the historical seed assignment (`seed` / `seed + 1`).
fn channel_pair(matching: MatchingPolicy, days: f64, seed: u64) -> [WildTrial; 2] {
    [
        WildTrial {
            spec: huya_population(),
            matching,
            observer_country: "US".into(),
            days,
            seed,
        },
        WildTrial {
            spec: rt_news_population(),
            matching,
            observer_country: "US".into(),
            days,
            seed: seed + 1,
        },
    ]
}

/// Runs the §IV-D wild harvest for both measured channels.
pub fn ip_leak_wild(
    days: f64,
    seed: u64,
) -> (pdn_core::IpLeakWildResult, pdn_core::IpLeakWildResult) {
    ip_leak_wild_pooled(days, seed, &WorldPool::auto())
}

/// [`ip_leak_wild`] with an explicit [`WorldPool`]: the two channel
/// harvests are independent worlds.
pub fn ip_leak_wild_pooled(
    days: f64,
    seed: u64,
    pool: &WorldPool,
) -> (pdn_core::IpLeakWildResult, pdn_core::IpLeakWildResult) {
    let mut r = run_wild_trials(&channel_pair(MatchingPolicy::Global, days, seed), pool);
    let rt = r.pop().expect("two trials");
    let huya = r.pop().expect("two trials");
    (huya, rt)
}

/// Runs the §V-C same-country mitigation pair.
pub fn privacy_mitigation(
    days: f64,
    seed: u64,
) -> (pdn_core::IpLeakWildResult, pdn_core::IpLeakWildResult) {
    privacy_mitigation_pooled(days, seed, &WorldPool::auto())
}

/// [`privacy_mitigation`] with an explicit [`WorldPool`].
pub fn privacy_mitigation_pooled(
    days: f64,
    seed: u64,
    pool: &WorldPool,
) -> (pdn_core::IpLeakWildResult, pdn_core::IpLeakWildResult) {
    let mut r = run_wild_trials(&channel_pair(MatchingPolicy::SameCountry, days, seed), pool);
    let rt = r.pop().expect("two trials");
    let huya = r.pop().expect("two trials");
    (huya, rt)
}

/// Runs the §V-A token-defense evaluation.
pub fn token_defense(seed: u64) -> pdn_core::defense::token::TokenEvaluation {
    pdn_core::defense::token::evaluate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_entry_point() {
        let (_, report) = detection_report(SEED);
        assert_eq!(report.table2.len(), 17);
        assert_eq!(report.table4.len(), 10);
    }

    #[test]
    fn freeriding_entry_point() {
        let s = freeriding_study(SEED);
        assert_eq!((s.tested, s.valid, s.cross_domain_vulnerable), (44, 40, 11));
    }
}

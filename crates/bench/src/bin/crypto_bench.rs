//! Emits `BENCH_crypto.json`: wall-clock numbers for the crypto fast path —
//! the precomputed-HMAC-midstate / zero-copy DTLS record layer against the
//! preserved naive baseline (`pdn_crypto::reference` + the v1 keystream),
//! plus STUN MESSAGE-INTEGRITY checks/sec and JWT verifies/sec old vs new,
//! all measured in the same process.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin crypto_bench [-- --quick]
//! ```
//!
//! `--quick` shrinks the iteration counts for CI smoke runs; the speedup
//! and zero-allocation gates still apply.
//!
//! The binary installs a counting global allocator so the "zero heap
//! allocations per sealed record in steady state" claim is *measured*, not
//! asserted from code reading.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use pdn_crypto::hmac::HmacKey;
use pdn_crypto::{base64url, ct_eq, jwt, reference};
use pdn_simnet::SimRng;
use pdn_webrtc::dtls::{handshake, DtlsEndpoint};
use pdn_webrtc::stun::Message;
use pdn_webrtc::Certificate;

/// Wraps the system allocator, counting every allocation. The DTLS
/// steady-state gate reads the counter around a seal+open loop.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const RUNS: usize = 5;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Fresh established client/server pair, deterministic.
fn dtls_pair(seed: u64) -> (DtlsEndpoint, DtlsEndpoint) {
    let mut rng = SimRng::seed(seed);
    let ccert = Certificate::generate(&mut rng);
    let scert = Certificate::generate(&mut rng);
    let (cfp, sfp) = (ccert.fingerprint(), scert.fingerprint());
    let (mut c, hello) = DtlsEndpoint::client(ccert, Some(sfp), &mut rng);
    let mut s = DtlsEndpoint::server(scert, Some(cfp), &mut rng);
    handshake(&mut c, hello, &mut s, &mut rng).expect("handshake");
    (c, s)
}

/// One timed fast-path run: `iters` records of `payload` sealed into and
/// opened from warm buffers. Returns elapsed seconds.
fn run_fast(payload: &[u8], iters: usize) -> f64 {
    let (mut c, mut s) = dtls_pair(17);
    let mut record = BytesMut::new();
    let mut plain = BytesMut::new();
    // Warm the buffers so the timed loop is steady-state.
    c.seal_into(payload, &mut record).expect("seal");
    s.open_into(&record, &mut plain).expect("open");
    let t = Instant::now();
    for _ in 0..iters {
        c.seal_into(payload, &mut record).expect("seal");
        s.open_into(&record, &mut plain).expect("open");
    }
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(&plain[..], payload, "fast path roundtrip");
    dt
}

/// One timed baseline run: the preserved pre-fast-path implementation
/// (per-record HMAC key schedule via `reference::hmac_sha256`, fresh
/// allocations, v1 one-full-hash-per-32-bytes keystream).
fn run_baseline(payload: &[u8], iters: usize) -> f64 {
    let (mut c, mut s) = dtls_pair(17);
    let t = Instant::now();
    let mut last = None;
    for _ in 0..iters {
        let record = c.seal_baseline(payload).expect("seal");
        last = Some(s.open_baseline(&record).expect("open"));
    }
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(&last.expect("ran")[..], payload, "baseline roundtrip");
    dt
}

/// One timed batch run: `iters` flushes of `batch` records, each flush one
/// `seal_batch_into` + one `open_batch_into` (the channel's multi-record
/// message path). Returns records/sec.
fn run_batch(payload: &[u8], batch: usize, iters: usize) -> f64 {
    let (mut c, mut s) = dtls_pair(17);
    let plaintexts: Vec<&[u8]> = vec![payload; batch];
    let mut outs = Vec::new();
    let mut records: Vec<Bytes> = Vec::new();
    let mut opens = Vec::new();
    let mut results = Vec::new();
    let mut flush = |c: &mut DtlsEndpoint, s: &mut DtlsEndpoint| {
        c.seal_batch_into(&plaintexts, &mut outs).expect("seal");
        records.clear();
        for o in &mut outs[..batch] {
            records.push(std::mem::take(o).freeze());
        }
        s.open_batch_into(&records, &mut opens, &mut results);
        for r in &results {
            r.as_ref().expect("open");
        }
    };
    flush(&mut c, &mut s); // warm buffers and scratch
    let t = Instant::now();
    for _ in 0..iters {
        flush(&mut c, &mut s);
    }
    (iters * batch) as f64 / t.elapsed().as_secs_f64()
}

/// Allocations per record across a warm burst receive: only the
/// `open_batch_into` calls are counted (sealing fresh records each flush
/// happens outside the counted windows).
fn batch_open_allocs(payload: &[u8], batch: usize, iters: usize) -> f64 {
    let (mut c, mut s) = dtls_pair(23);
    let plaintexts: Vec<&[u8]> = vec![payload; batch];
    let mut outs = Vec::new();
    let mut opens = Vec::new();
    let mut results = Vec::new();
    let seal = |c: &mut DtlsEndpoint, outs: &mut Vec<BytesMut>| -> Vec<Bytes> {
        c.seal_batch_into(&plaintexts, outs).expect("seal");
        outs[..batch]
            .iter_mut()
            .map(|o| std::mem::take(o).freeze())
            .collect()
    };
    // Warm: first open sizes the plaintext buffers and the endpoint's
    // batch scratch (lane states, digests, tags).
    let records = seal(&mut c, &mut outs);
    s.open_batch_into(&records, &mut opens, &mut results);
    let mut counted = 0u64;
    for _ in 0..iters {
        let records = seal(&mut c, &mut outs);
        let before = ALLOCS.load(Ordering::Relaxed);
        s.open_batch_into(&records, &mut opens, &mut results);
        counted += ALLOCS.load(Ordering::Relaxed) - before;
        for r in &results {
            r.as_ref().expect("open");
        }
    }
    counted as f64 / (iters * batch) as f64
}

/// Allocations per record across a steady-state seal+open loop.
fn allocs_per_record(payload: &[u8], iters: usize) -> f64 {
    let (mut c, mut s) = dtls_pair(23);
    let mut record = BytesMut::new();
    let mut plain = BytesMut::new();
    for _ in 0..4 {
        c.seal_into(payload, &mut record).expect("seal");
        s.open_into(&record, &mut plain).expect("open");
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        c.seal_into(payload, &mut record).expect("seal");
        s.open_into(&record, &mut plain).expect("open");
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    (after - before) as f64 / iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 8 } else { 1 };

    // --- DTLS record layer: seal + open, old vs new, per payload size. ---
    let sizes: &[(usize, usize)] = &[(64, 6000), (1200, 1500), (16_384, 150)];
    let mut dtls_rows = String::new();
    let mut worst_speedup = f64::INFINITY;
    for &(size, iters) in sizes {
        let iters = (iters / scale).max(10);
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        // Interleave old/new runs so frequency scaling hits both equally.
        let mut new_s = Vec::new();
        let mut old_s = Vec::new();
        for _ in 0..RUNS {
            new_s.push(run_fast(&payload, iters));
            old_s.push(run_baseline(&payload, iters));
        }
        let new_dt = median(new_s);
        let old_dt = median(old_s);
        let new_rps = iters as f64 / new_dt;
        let old_rps = iters as f64 / old_dt;
        let new_mbps = (iters * size) as f64 / new_dt / 1e6;
        let old_mbps = (iters * size) as f64 / old_dt / 1e6;
        let speedup = new_rps / old_rps;
        worst_speedup = worst_speedup.min(speedup);
        dtls_rows.push_str(&format!(
            "    {{\"payload_bytes\": {size}, \"records_per_sec_new\": {new_rps:.0}, \
             \"records_per_sec_old\": {old_rps:.0}, \"mb_per_sec_new\": {new_mbps:.1}, \
             \"mb_per_sec_old\": {old_mbps:.1}, \"speedup\": {speedup:.2}}},\n"
        ));
    }
    dtls_rows.pop();
    dtls_rows.pop(); // trailing ",\n"

    let alloc_rate = allocs_per_record(&vec![7u8; 1200], (4000 / scale).max(50));

    // --- Batched record engine: records/sec per batch size, one wide
    // keystream + HMAC pass per flush vs per-record sealing. ---
    let batch_payload: Vec<u8> = (0..1200).map(|i| (i % 251) as u8).collect();
    let batch_sizes = [1usize, 4, 8, 16];
    // Interleave the batch sizes within each round (as the dtls rows do)
    // so frequency scaling drifts hit every size equally.
    let mut batch_samples: Vec<Vec<f64>> = vec![Vec::new(); batch_sizes.len()];
    for _ in 0..RUNS {
        for (bi, &batch) in batch_sizes.iter().enumerate() {
            let iters = (3000 / scale / batch).max(10);
            batch_samples[bi].push(run_batch(&batch_payload, batch, iters));
        }
    }
    let mut batch_rows = String::new();
    let mut batch_rps = Vec::new();
    for (bi, &batch) in batch_sizes.iter().enumerate() {
        let rps = median(batch_samples[bi].clone());
        let mbps = rps * batch_payload.len() as f64 / 1e6;
        batch_rows.push_str(&format!(
            "    {{\"batch\": {batch}, \"records_per_sec\": {rps:.0}, \
             \"mb_per_sec\": {mbps:.1}}},\n"
        ));
        batch_rps.push(rps);
    }
    batch_rows.pop();
    batch_rows.pop(); // trailing ",\n"
    let batch_alloc_rate = batch_open_allocs(&batch_payload, 8, (400 / scale).max(20));

    // --- STUN MESSAGE-INTEGRITY: checks/sec, per-check key schedule vs
    // cached HmacKey. ---
    let pwd = b"ice-password-benchmark";
    let key = HmacKey::new(pwd);
    let txid = [9u8; 12];
    let msg = Message::binding_request(txid).with_integrity(&key);
    let mac_ref = reference::hmac_sha256(pwd, &txid);
    let stun_iters = (200_000 / scale).max(1000);
    let mut new_s = Vec::new();
    let mut old_s = Vec::new();
    for _ in 0..RUNS {
        let t = Instant::now();
        for _ in 0..stun_iters {
            assert!(msg.verify_integrity(std::hint::black_box(&key)));
        }
        new_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..stun_iters {
            // The pre-PR check: full HMAC key schedule from the raw
            // password, naive SHA-256, every time.
            let mac = reference::hmac_sha256(std::hint::black_box(pwd), &txid);
            assert!(ct_eq(&mac, &mac_ref));
        }
        old_s.push(t.elapsed().as_secs_f64());
    }
    let stun_new = stun_iters as f64 / median(new_s);
    let stun_old = stun_iters as f64 / median(old_s);

    // --- JWT verifies/sec: keyed fast path vs a faithful replica of the
    // pre-PR verify (signing-input concat + naive HMAC per call). ---
    let jwt_key_bytes = b"pdn-provider-jwt-key";
    let jwt_key = HmacKey::new(jwt_key_bytes);
    let payload = br#"{"customer_id":"xx.yy","pdn_peer_id":"1","video_ids":["https://xx.yy/zz.m3u8"],"timestamp":1619814000,"ttl":60,"usage_limit":1}"#;
    let token = jwt::sign_raw(payload, jwt_key_bytes);
    let verify_old = |token: &str| -> Vec<u8> {
        let mut parts = token.split('.');
        let (head, body, sig) = (
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap(),
        );
        let signing_input = format!("{head}.{body}");
        let expected = reference::hmac_sha256(jwt_key_bytes, signing_input.as_bytes());
        let got = base64url::decode(sig).unwrap();
        assert!(ct_eq(&expected, &got));
        base64url::decode(body).unwrap()
    };
    let jwt_iters = (50_000 / scale).max(500);
    let mut new_s = Vec::new();
    let mut old_s = Vec::new();
    for _ in 0..RUNS {
        let t = Instant::now();
        for _ in 0..jwt_iters {
            jwt::verify_raw_keyed(std::hint::black_box(&token), &jwt_key).expect("valid");
        }
        new_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..jwt_iters {
            verify_old(std::hint::black_box(&token));
        }
        old_s.push(t.elapsed().as_secs_f64());
    }
    let jwt_new = jwt_iters as f64 / median(new_s);
    let jwt_old = jwt_iters as f64 / median(old_s);

    let hw = pdn_crypto::sha256::hw_accelerated();
    let wide = pdn_crypto::sha256::multibuffer_profitable();
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"sha_hw_accelerated\": {hw},\n  \
         \"sha_multibuffer_profitable\": {wide},\n  \
         \"dtls_seal_open\": [\n{dtls_rows}\n  ],\n  \
         \"dtls_allocs_per_record_steady_state\": {alloc_rate:.3},\n  \
         \"dtls_batch_roundtrip\": [\n{batch_rows}\n  ],\n  \
         \"dtls_batch_open_allocs_per_record\": {batch_alloc_rate:.3},\n  \
         \"stun_checks_per_sec_new\": {stun_new:.0},\n  \
         \"stun_checks_per_sec_old\": {stun_old:.0},\n  \
         \"stun_speedup\": {:.2},\n  \
         \"jwt_verifies_per_sec_new\": {jwt_new:.0},\n  \
         \"jwt_verifies_per_sec_old\": {jwt_old:.0},\n  \
         \"jwt_speedup\": {:.2},\n  \
         \"dtls_worst_speedup\": {worst_speedup:.2}\n}}\n",
        stun_new / stun_old,
        jwt_new / jwt_old,
    );
    if !quick {
        std::fs::write("BENCH_crypto.json", &json).expect("write BENCH_crypto.json");
    }
    print!("{json}");

    assert!(
        alloc_rate == 0.0,
        "steady-state seal+open must not allocate (got {alloc_rate:.3} allocs/record)"
    );
    assert!(
        batch_alloc_rate == 0.0,
        "warm burst receive (open_batch_into) must not allocate \
         (got {batch_alloc_rate:.3} allocs/record)"
    );
    // The batch engine dispatches on a hardware probe: hosts whose SHA
    // unit pipelines multi-buffer streams get the wide kernels (a real
    // win), throughput-bound hosts fall back to the fused per-record
    // kernel (parity). Either way, batching a flush must never cost more
    // than measurement noise over sealing record by record.
    assert!(
        batch_rps[2] >= 0.92 * batch_rps[0],
        "batch-8 round trip must not lose to per-record \
         ({:.0} vs {:.0} records/sec)",
        batch_rps[2],
        batch_rps[0]
    );
    // Both paths pay one compression per 32 keystream bytes; the fast
    // path's margin at large payloads comes from running them on the CPU's
    // SHA extensions. Without that hardware only the midstate/zero-copy
    // wins remain, so the gate drops to "measurably faster" (same stance
    // as sim_bench's small-host guard).
    if hw {
        assert!(
            worst_speedup >= 3.0,
            "DTLS seal+open fast path must be >=3x the baseline at every \
             payload size (worst {worst_speedup:.2}x)"
        );
    } else {
        eprintln!("note: no SHA hardware on this host; skipping the >=3x DTLS gate");
        assert!(
            worst_speedup > 1.0,
            "DTLS seal+open fast path must beat the baseline (worst {worst_speedup:.2}x)"
        );
    }
    assert!(
        stun_new > stun_old,
        "cached-key STUN checks must beat per-check key schedules"
    );
    assert!(
        jwt_new > jwt_old,
        "keyed JWT verifies must beat per-verify key schedules"
    );
}

//! Emits `BENCH_scan.json`: wall-clock numbers for the static-scan hot
//! path — naive serial baseline vs the compiled Aho–Corasick matcher,
//! serial and sharded — over a 10K-site corpus.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin scan_bench
//! ```

use std::time::Instant;

use pdn_detector::corpus::{generate, CorpusConfig};
use pdn_detector::scanner::default_workers;
use pdn_detector::Scanner;
use pdn_simnet::SimRng;

const RUNS: usize = 5;

fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[RUNS / 2]
}

fn main() {
    let mut rng = SimRng::seed(11);
    let eco = generate(
        CorpusConfig {
            website_haystack: 10_000,
            app_haystack: 1_000,
            video_fraction: 0.4,
        },
        &mut rng,
    );
    let scanner = Scanner::new();
    let workers = default_workers();

    let reference = scanner.scan_naive(&eco);
    assert_eq!(
        reference,
        scanner.scan(&eco),
        "hot path disagrees with the naive reference"
    );

    let naive_ms = median_ms(|| {
        std::hint::black_box(scanner.scan_naive(&eco));
    });
    let serial_ms = median_ms(|| {
        std::hint::black_box(scanner.scan_with_workers(&eco, 1));
    });
    let sharded_ms = median_ms(|| {
        std::hint::black_box(scanner.scan_with_workers(&eco, workers));
    });

    let json = format!(
        "{{\n  \"corpus_sites\": {},\n  \"corpus_apps\": {},\n  \"detections\": {},\n  \
         \"workers\": {},\n  \"naive_serial_ms\": {:.2},\n  \"matcher_serial_ms\": {:.2},\n  \
         \"matcher_sharded_ms\": {:.2},\n  \"speedup_matcher\": {:.2},\n  \
         \"speedup_total\": {:.2}\n}}\n",
        eco.websites.len(),
        eco.apps.len(),
        reference.sites.len(),
        workers,
        naive_ms,
        serial_ms,
        sharded_ms,
        naive_ms / serial_ms,
        naive_ms / sharded_ms,
    );
    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    print!("{json}");
    // `scan()` picks the worker count itself, so both rows are the hot
    // path; judging the better one keeps the gate stable on single-core
    // hosts where sharding is pure thread overhead.
    let hot_ms = serial_ms.min(sharded_ms);
    assert!(
        naive_ms / hot_ms >= 5.0,
        "scan hot path must be >=5x the naive serial baseline (got {:.2}x)",
        naive_ms / hot_ms
    );
}

//! The PDN analyzer CLI (§IV-A, Figure 2): "our PDN analyzer accepts a PDN
//! service and a security test as the input" — so does this binary.
//!
//! ```sh
//! cargo run --release -p pdn-bench --bin analyzer -- --provider peer5 --test segment-pollution
//! cargo run --release -p pdn-bench --bin analyzer -- --provider viblast --test cross-domain --seed 7
//! cargo run --release -p pdn-bench --bin analyzer -- --list
//! ```

use pdn_core::pollution::PollutionMode;
use pdn_provider::{AuthScheme, ProviderProfile};

const TESTS: &[&str] = &[
    "cross-domain",
    "domain-spoofing",
    "direct-pollution",
    "segment-pollution",
    "ip-leak",
    "resource-squatting",
    "token-defense",
    "integrity-defense",
];

const PROVIDERS: &[&str] = &[
    "peer5",
    "streamroot",
    "viblast",
    "mango-tv",
    "microsoft-ecdn",
    "hardened-peer5",
];

fn provider(name: &str) -> Option<ProviderProfile> {
    Some(match name {
        "peer5" => ProviderProfile::peer5(),
        "streamroot" => ProviderProfile::streamroot(),
        "viblast" => ProviderProfile::viblast(),
        "mango-tv" => ProviderProfile::private_mango_tv(),
        "microsoft-ecdn" => ProviderProfile::microsoft_ecdn(),
        "hardened-peer5" => {
            let mut p = ProviderProfile::hardened(&ProviderProfile::peer5());
            p.auth = AuthScheme::StaticApiKey;
            p
        }
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!("usage: analyzer --provider <name> --test <name> [--seed N]");
    eprintln!("       analyzer --list");
    eprintln!("providers: {}", PROVIDERS.join(", "));
    eprintln!("tests:     {}", TESTS.join(", "));
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("providers: {}", PROVIDERS.join(", "));
        println!("tests:     {}", TESTS.join(", "));
        return;
    }
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(provider_name) = get("--provider") else {
        usage()
    };
    let Some(test_name) = get("--test") else {
        usage()
    };
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let Some(profile) = provider(&provider_name) else {
        eprintln!("unknown provider {provider_name:?}");
        usage()
    };

    println!(
        "analyzer: provider={} test={test_name} seed={seed}",
        profile.name
    );
    match test_name.as_str() {
        "cross-domain" => {
            let (outcome, bytes) = pdn_core::freeriding::cross_domain_attack(
                &profile,
                profile.allowlist_default,
                seed,
            );
            println!("outcome: {outcome:?} (attacker exchanged {bytes} P2P bytes)");
        }
        "domain-spoofing" => {
            let (outcome, bytes) = pdn_core::freeriding::domain_spoofing_attack(&profile, seed);
            println!("outcome: {outcome:?} (attacker exchanged {bytes} P2P bytes)");
        }
        "direct-pollution" => {
            let r = pdn_core::pollution::run_pollution(&profile, PollutionMode::Direct, 2, seed);
            print_pollution(&r);
        }
        "segment-pollution" => {
            let r = pdn_core::pollution::run_pollution(
                &profile,
                PollutionMode::FromSeq(profile.slow_start_segments),
                2,
                seed,
            );
            print_pollution(&r);
        }
        "ip-leak" => {
            let leaked = pdn_core::ip_leak::ip_leak_basic(&profile, seed);
            println!(
                "outcome: {}",
                if leaked {
                    "Vulnerable (each peer learned the other's real IP)"
                } else {
                    "Protected"
                }
            );
        }
        "resource-squatting" => {
            let fig = pdn_core::squatting::resource_consumption(&profile, 90, seed);
            println!(
                "outcome: +{:.0}% CPU, +{:.0}% memory vs the no-peer control",
                fig.cpu_overhead() * 100.0,
                fig.mem_overhead() * 100.0
            );
        }
        "token-defense" => {
            let e = pdn_core::defense::token::evaluate(seed);
            println!(
                "outcome: defense holds = {} (token {} bytes)",
                e.defense_holds(),
                e.token_bytes
            );
        }
        "integrity-defense" => {
            let t = pdn_core::defense::integrity::table_vi(120, seed);
            println!("{}", t.render());
        }
        other => {
            eprintln!("unknown test {other:?}");
            usage()
        }
    }
}

fn print_pollution(r: &pdn_core::PollutionResult) {
    println!(
        "outcome: {} — victim played {} polluted / {} total; attacker isolated={} \
         rejections={} blacklisted={}",
        if r.attack_succeeded() {
            "ATTACK SUCCEEDED"
        } else {
            "attack blocked"
        },
        r.victim_polluted_played,
        r.victim_total_played,
        r.attacker_isolated,
        r.victim_rejections,
        r.attacker_blacklisted
    );
}

//! Emits `BENCH_wire.json`: wall-clock numbers for the binary wire codec —
//! signaling encode+decode against the preserved JSON baseline and P2P
//! encode+decode against the legacy fixed-width framing, measured in the
//! same process, plus the end-to-end effect of the codec swap on the
//! table5 world workload at several worker counts.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin wire_bench [-- --quick]
//! ```
//!
//! `--quick` shrinks iteration counts and skips the end-to-end table5
//! section for CI smoke runs; the speedup and zero-allocation gates still
//! apply.
//!
//! Like `crypto_bench`, the binary installs a counting global allocator so
//! the "zero heap allocations per message in steady state" claim is
//! *measured*, not asserted from code reading.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use pdn_bench::{table5_pooled, SEED};
use pdn_core::WorldPool;
use pdn_media::VideoId;
use pdn_provider::wire::{self, InternTable, P2pRef, P2pView, WireMode};
use pdn_provider::{P2pMsg, SignalMsg};
use pdn_simnet::Addr;
use pdn_webrtc::{Candidate, CandidateKind, Fingerprint, SessionDescription};

/// Wraps the system allocator, counting every allocation. The steady-state
/// gate reads the counter around an encode+decode loop.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const RUNS: usize = 5;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn sdp(nc: usize) -> SessionDescription {
    SessionDescription {
        ice_ufrag: "ufrag01".into(),
        ice_pwd: "pwd-secret".into(),
        fingerprint: Fingerprint([7u8; 32]),
        candidates: (0..nc)
            .map(|i| Candidate {
                kind: match i % 3 {
                    0 => CandidateKind::Host,
                    1 => CandidateKind::ServerReflexive,
                    _ => CandidateKind::Relay,
                },
                addr: Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8, 4000 + i as u16),
                priority: 1 << (i % 31),
            })
            .collect(),
    }
}

/// The signaling corpus: every variant, weighted like a session (a Join
/// with a realistic candidate list, a JoinOk introducing neighbors, then
/// the steady-state report/broadcast traffic).
fn signal_corpus() -> Vec<SignalMsg> {
    vec![
        SignalMsg::Join {
            api_key: Some("customer-api-key".into()),
            token: Some("eyJ0.eyJj.sig".into()),
            origin: "https://videos.example".into(),
            video: "https://cdn.example/v/master.m3u8".into(),
            manifest_hash: "ab".repeat(16),
            sdp: sdp(4),
        },
        SignalMsg::JoinOk {
            peer_id: 1 << 40,
            neighbors: vec![(1, sdp(3)), (2, sdp(2)), (3, sdp(1))],
        },
        SignalMsg::JoinDenied {
            reason: "bad key".into(),
        },
        SignalMsg::PeerJoined {
            peer_id: 7,
            sdp: sdp(3),
        },
        SignalMsg::StatsReport {
            p2p_up_bytes: 123_456_789,
            p2p_down_bytes: 987_654,
        },
        SignalMsg::ImReport {
            video: "https://cdn.example/v/master.m3u8".into(),
            rendition: 2,
            seq: 300,
            im: "00ff".repeat(16),
        },
        SignalMsg::SimBroadcast {
            video: "https://cdn.example/v/master.m3u8".into(),
            rendition: 0,
            seq: 12,
            im: "aa".repeat(32),
            sig: "bb".repeat(32),
        },
        SignalMsg::Blacklisted {
            reason: "fake reports".into(),
        },
        SignalMsg::Leave,
    ]
}

/// The P2P corpus: the scheduler's steady-state mix — HAVE advertisements,
/// a request, and segment deliveries (one with a ~1 KiB payload and SIM
/// metadata attached).
fn p2p_corpus() -> Vec<P2pMsg> {
    let vid = VideoId::new("https://cdn.example/v/master.m3u8");
    vec![
        P2pMsg::Have {
            video: vid.clone(),
            rendition: 1,
            seqs: vec![40, 41, 42, 43, 44, 45, 46, 47],
        },
        P2pMsg::Have {
            video: vid.clone(),
            rendition: 1,
            seqs: vec![48],
        },
        P2pMsg::RequestSegment {
            video: vid.clone(),
            rendition: 1,
            seq: 48,
        },
        P2pMsg::SegmentData {
            video: vid,
            rendition: 1,
            seq: 48,
            duration_ms: 4000,
            data: Bytes::from((0..1024u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>()),
            sim: Some(([1u8; 32], [2u8; 32])),
        },
    ]
}

/// Forces full consumption of a borrowed view (streams the seq list,
/// touches the payload) so the decoder can't be optimized away.
fn consume_view(view: &P2pView<'_>) -> u64 {
    match view {
        P2pView::Have { seqs, .. } => seqs.clone().sum(),
        P2pView::RequestSegment { seq, .. } => *seq,
        P2pView::SegmentData { seq, data, .. } => *seq + data.len() as u64,
    }
}

/// One timed binary-signaling run: each corpus message encoded into a warm
/// scratch and a pre-encoded frame decoded, `iters` corpus passes.
fn run_signal_binary(corpus: &[SignalMsg], iters: usize) -> f64 {
    let frames: Vec<Bytes> = corpus.iter().map(wire::encode_signal).collect();
    let mut scratch = BytesMut::with_capacity(4096);
    for (msg, frame) in corpus.iter().zip(&frames) {
        scratch.clear();
        wire::encode_signal_into(msg, &mut scratch);
        assert!(wire::decode_signal(frame).is_some());
    }
    let t = Instant::now();
    for _ in 0..iters {
        for (msg, frame) in corpus.iter().zip(&frames) {
            scratch.clear();
            wire::encode_signal_into(std::hint::black_box(msg), &mut scratch);
            std::hint::black_box(wire::decode_signal(std::hint::black_box(frame)));
        }
    }
    t.elapsed().as_secs_f64()
}

/// The same roundtrip through the preserved JSON baseline codec.
fn run_signal_json(corpus: &[SignalMsg], iters: usize) -> f64 {
    let frames: Vec<Bytes> = corpus
        .iter()
        .map(wire::json_baseline::encode_signal)
        .collect();
    for frame in &frames {
        assert!(wire::json_baseline::decode_signal(frame).is_some());
    }
    let t = Instant::now();
    for _ in 0..iters {
        for (msg, frame) in corpus.iter().zip(&frames) {
            std::hint::black_box(wire::json_baseline::encode_signal(std::hint::black_box(
                msg,
            )));
            std::hint::black_box(wire::json_baseline::decode_signal(std::hint::black_box(
                frame,
            )));
        }
    }
    t.elapsed().as_secs_f64()
}

/// One timed binary-P2P run: the SDK hot path — borrowed [`P2pRef`] views
/// encoded into a warm scratch with an interned video id, borrowed
/// [`P2pView`] decodes of pre-encoded frames.
fn run_p2p_binary(corpus: &[P2pMsg], table: &InternTable, iters: usize) -> u64 {
    let refs: Vec<P2pRef<'_>> = corpus.iter().map(P2pRef::from).collect();
    let frames: Vec<Bytes> = corpus.iter().map(|m| wire::encode_p2p(m, table)).collect();
    let mut scratch = BytesMut::with_capacity(2048);
    let mut sum = 0u64;
    for (r, frame) in refs.iter().zip(&frames) {
        scratch.clear();
        wire::encode_p2p_into(r, table, &mut scratch);
        sum += consume_view(&wire::decode_p2p_view(frame).expect("valid frame"));
    }
    for _ in 0..iters {
        for (r, frame) in refs.iter().zip(&frames) {
            scratch.clear();
            wire::encode_p2p_into(std::hint::black_box(r), table, &mut scratch);
            sum += consume_view(&wire::decode_p2p_view(std::hint::black_box(frame)).expect("ok"));
        }
    }
    sum
}

fn time_p2p_binary(corpus: &[P2pMsg], table: &InternTable, iters: usize) -> f64 {
    let t = Instant::now();
    std::hint::black_box(run_p2p_binary(corpus, table, iters));
    t.elapsed().as_secs_f64()
}

/// The legacy owned path: fixed-width encode allocating a frame per
/// message, decode materializing an owned [`P2pMsg`].
fn run_p2p_legacy(corpus: &[P2pMsg], iters: usize) -> f64 {
    let frames: Vec<Bytes> = corpus.iter().map(wire::json_baseline::encode_p2p).collect();
    for frame in &frames {
        assert!(wire::json_baseline::decode_p2p(frame).is_some());
    }
    let t = Instant::now();
    for _ in 0..iters {
        for (msg, frame) in corpus.iter().zip(&frames) {
            std::hint::black_box(wire::json_baseline::encode_p2p(std::hint::black_box(msg)));
            std::hint::black_box(wire::json_baseline::decode_p2p(std::hint::black_box(frame)));
        }
    }
    t.elapsed().as_secs_f64()
}

/// Allocations per message across the steady-state binary hot path:
/// signaling encodes into a warm scratch plus P2P encode+view-decode.
fn allocs_per_msg(signals: &[SignalMsg], p2p: &[P2pMsg], table: &InternTable, iters: usize) -> f64 {
    let mut scratch = BytesMut::with_capacity(4096);
    let refs: Vec<P2pRef<'_>> = p2p.iter().map(P2pRef::from).collect();
    let frames: Vec<Bytes> = p2p.iter().map(|m| wire::encode_p2p(m, table)).collect();
    let mut sum = 0u64;
    let pass = |sum: &mut u64, scratch: &mut BytesMut| {
        for msg in signals {
            scratch.clear();
            wire::encode_signal_into(msg, scratch);
        }
        for (r, frame) in refs.iter().zip(&frames) {
            scratch.clear();
            wire::encode_p2p_into(r, table, scratch);
            *sum += consume_view(&wire::decode_p2p_view(frame).expect("valid frame"));
        }
    };
    for _ in 0..4 {
        pass(&mut sum, &mut scratch);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        pass(&mut sum, &mut scratch);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    std::hint::black_box(sum);
    (after - before) as f64 / (iters * (signals.len() + p2p.len())) as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 8 } else { 1 };

    let signals = signal_corpus();
    let p2p = p2p_corpus();
    let mut table = InternTable::new();
    table.intern("https://cdn.example/v/master.m3u8");

    // --- Signaling: binary vs JSON roundtrip, interleaved runs. ---
    let sig_iters = (4_000 / scale).max(100);
    let mut bin_s = Vec::new();
    let mut json_s = Vec::new();
    for _ in 0..RUNS {
        bin_s.push(run_signal_binary(&signals, sig_iters));
        json_s.push(run_signal_json(&signals, sig_iters));
    }
    let n_sig = (sig_iters * signals.len()) as f64;
    let sig_bin_mps = n_sig / median(bin_s);
    let sig_json_mps = n_sig / median(json_s);
    let sig_speedup = sig_bin_mps / sig_json_mps;

    // --- P2P: borrowed hot path vs legacy owned path. ---
    let p2p_iters = (20_000 / scale).max(500);
    let mut bin_s = Vec::new();
    let mut old_s = Vec::new();
    for _ in 0..RUNS {
        bin_s.push(time_p2p_binary(&p2p, &table, p2p_iters));
        old_s.push(run_p2p_legacy(&p2p, p2p_iters));
    }
    let n_p2p = (p2p_iters * p2p.len()) as f64;
    let p2p_bin_mps = n_p2p / median(bin_s);
    let p2p_old_mps = n_p2p / median(old_s);
    let p2p_speedup = p2p_bin_mps / p2p_old_mps;

    let alloc_rate = allocs_per_msg(&signals, &p2p, &table, (2_000 / scale).max(50));

    // --- End-to-end: table5 under both codecs at several worker counts.
    // Skipped in --quick (sim_bench --quick owns the workload regression
    // gate there); the codec swap must not change a single table byte.
    let mut e2e = String::new();
    if !quick {
        let run_tables = |mode: WireMode| -> (Vec<String>, f64) {
            wire::set_wire_mode(mode);
            let tables: Vec<String> = [1usize, 2, 4, 8]
                .iter()
                .map(|&w| table5_pooled(SEED, &WorldPool::new(w)).render())
                .collect();
            let t = Instant::now();
            std::hint::black_box(table5_pooled(SEED, &WorldPool::serial()).render());
            let ms = t.elapsed().as_secs_f64() * 1e3;
            (tables, ms)
        };
        let (bin_tables, bin_ms) = run_tables(WireMode::Binary);
        let (json_tables, json_ms) = run_tables(WireMode::JsonBaseline);
        wire::set_wire_mode(WireMode::Binary);
        let workers_ok = bin_tables.iter().all(|t| *t == bin_tables[0])
            && json_tables.iter().all(|t| *t == json_tables[0]);
        let codecs_ok = bin_tables[0] == json_tables[0];
        e2e = format!(
            ",\n  \"tables_identical_across_workers\": {workers_ok},\n  \
             \"tables_identical_across_codecs\": {codecs_ok},\n  \
             \"table5_serial_ms_binary\": {bin_ms:.2},\n  \
             \"table5_serial_ms_json\": {json_ms:.2},\n  \
             \"end_to_end_speedup\": {:.2}",
            json_ms / bin_ms
        );
        assert!(
            workers_ok,
            "table5 must be byte-identical at workers 1/2/4/8"
        );
        assert!(
            codecs_ok,
            "the codec swap must not change a single table byte"
        );
    }

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \
         \"signal_msgs_per_sec_binary\": {sig_bin_mps:.0},\n  \
         \"signal_msgs_per_sec_json\": {sig_json_mps:.0},\n  \
         \"signal_speedup\": {sig_speedup:.2},\n  \
         \"p2p_msgs_per_sec_binary\": {p2p_bin_mps:.0},\n  \
         \"p2p_msgs_per_sec_legacy\": {p2p_old_mps:.0},\n  \
         \"p2p_speedup\": {p2p_speedup:.2},\n  \
         \"binary_allocs_per_msg_steady_state\": {alloc_rate:.3}{e2e}\n}}\n"
    );
    if !quick {
        std::fs::write("BENCH_wire.json", &json).expect("write BENCH_wire.json");
    }
    print!("{json}");

    assert!(
        alloc_rate == 0.0,
        "steady-state binary encode + view decode must not allocate \
         (got {alloc_rate:.3} allocs/msg)"
    );
    assert!(
        sig_speedup >= 4.0,
        "binary signaling encode+decode must be >=4x the JSON baseline \
         (got {sig_speedup:.2}x)"
    );
    // The legacy P2P framing was already binary (fixed-width); the varint
    // codec's margin there comes from the no-alloc borrowed paths, so the
    // gate is "measurably faster", not 4x.
    assert!(
        p2p_speedup > 1.0,
        "borrowed P2P hot path must beat the legacy owned path \
         (got {p2p_speedup:.2}x)"
    );
}

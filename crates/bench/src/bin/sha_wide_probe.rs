//! Throughput probe for the wide SHA-256 compressors: blocks/sec for the
//! serial, 2-, 4-, and 8-wide paths on independent lanes. Diagnostic
//! harness for tuning the multi-buffer kernels and sanity-checking the
//! [`multibuffer_profitable`] dispatch the batched DTLS record engine
//! branches on; not part of the JSON bench suite.
//!
//! [`multibuffer_profitable`]: pdn_crypto::sha256::multibuffer_profitable

use std::time::Instant;

use pdn_crypto::sha256::{compress2, compress4, compress8, Midstate, Sha256, BLOCK_LEN};

fn main() {
    let iters = 200_000u64;
    let mk_state = |i: u8| {
        let mut h = Sha256::new();
        h.update(&[i; BLOCK_LEN]);
        h.midstate()
    };
    let blocks: [[u8; BLOCK_LEN]; 8] = std::array::from_fn(|i| [i as u8; BLOCK_LEN]);

    // Serial: 8 lanes, one at a time.
    let mut states: [Midstate; 8] = std::array::from_fn(|i| mk_state(i as u8));
    let t = Instant::now();
    for _ in 0..iters {
        for (s, b) in states.iter_mut().zip(&blocks) {
            s.compress_in_place(b);
        }
    }
    let serial = (iters * 8) as f64 / t.elapsed().as_secs_f64();
    println!("serial   : {serial:>12.0} blocks/s");

    // 2-wide.
    let mut states: [Midstate; 8] = std::array::from_fn(|i| mk_state(i as u8));
    let t = Instant::now();
    for _ in 0..iters {
        for pair in 0..4 {
            let (a, b) = states.split_at_mut(2 * pair + 1);
            let mut two = [a[2 * pair], b[0]];
            let blk = [blocks[2 * pair], blocks[2 * pair + 1]];
            compress2(&mut two, &blk);
            a[2 * pair] = two[0];
            b[0] = two[1];
        }
    }
    let wide2 = (iters * 8) as f64 / t.elapsed().as_secs_f64();
    println!(
        "compress2: {wide2:>12.0} blocks/s ({:.2}x serial)",
        wide2 / serial
    );

    // 4-wide.
    let mut states: [Midstate; 8] = std::array::from_fn(|i| mk_state(i as u8));
    let t = Instant::now();
    for _ in 0..iters {
        for half in 0..2 {
            let mut four: [Midstate; 4] = std::array::from_fn(|i| states[4 * half + i]);
            let blk: [[u8; BLOCK_LEN]; 4] = std::array::from_fn(|i| blocks[4 * half + i]);
            compress4(&mut four, &blk);
            for i in 0..4 {
                states[4 * half + i] = four[i];
            }
        }
    }
    let wide4 = (iters * 8) as f64 / t.elapsed().as_secs_f64();
    println!(
        "compress4: {wide4:>12.0} blocks/s ({:.2}x serial)",
        wide4 / serial
    );

    // 8-wide.
    let mut states: [Midstate; 8] = std::array::from_fn(|i| mk_state(i as u8));
    let t = Instant::now();
    for _ in 0..iters {
        compress8(&mut states, &blocks);
    }
    let wide8 = (iters * 8) as f64 / t.elapsed().as_secs_f64();
    println!(
        "compress8: {wide8:>12.0} blocks/s ({:.2}x serial)",
        wide8 / serial
    );

    let wide = pdn_crypto::sha256::multibuffer_profitable();
    println!(
        "multibuffer_profitable: {wide} -> batch engines take the {} path",
        if wide {
            "wide-lane"
        } else {
            "per-record fused"
        },
    );
}

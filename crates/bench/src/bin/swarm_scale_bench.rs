//! Emits `BENCH_swarm.json`: throughput and memory numbers for the
//! space-sharded aggregate swarm (`pdn_provider::swarm`) — events/sec,
//! bytes/peer, and peers/GB at 10k and 100k peers (1M behind `--xl`),
//! plus a byte-identity check of the result table across shard counts.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin swarm_scale_bench [-- --quick | --xl] [--seed N]
//! ```
//!
//! `--quick` runs the 10k-peer world at shard counts 1/2/4/8, fails on
//! any table divergence, gates events/sec against the committed
//! `BENCH_swarm.json` (>10% regression) and enforces the peers/GB floor.
//! No JSON is written in quick mode — this is the `scripts/check.sh`
//! guard.
//!
//! The recorded `mode` ("inline" or "threaded") is the path the shard
//! runner actually took on this host: 1-core containers collapse to the
//! inline degenerate loop, and wall-clock speedup gates skip honestly
//! there instead of measuring threads fighting for one core.

use std::time::Instant;

use pdn_provider::swarm::{SwarmConfig, SwarmWorld};
use pdn_simnet::shard::{host_parallelism, ShardMode};

/// The peers/GB floor: the per-peer diet target is <1 KB steady-state,
/// i.e. at least ~10^6 peers per GiB of world footprint.
const PEERS_PER_GB_FLOOR: f64 = 1_000_000.0;

/// One measured scale point.
struct Point {
    label: &'static str,
    peers: u32,
    events: u64,
    events_per_sec: f64,
    bytes_per_peer: f64,
    peers_per_gb: f64,
    offload_pct: f64,
    completed_share: f64,
    mode: &'static str,
    shards: usize,
}

/// Largest of 1/2/4/8 not exceeding the host's parallelism — the shard
/// count a production run would pick (all divide the 40-region default).
fn auto_shards() -> usize {
    let host = host_parallelism();
    [8, 4, 2, 1].into_iter().find(|&k| k <= host).unwrap_or(1)
}

fn run_point(label: &'static str, cfg: SwarmConfig, shards: usize) -> (Point, String) {
    let mut world = SwarmWorld::new(&cfg, shards);
    let t = Instant::now();
    let report = world.run(ShardMode::Auto);
    let secs = t.elapsed().as_secs_f64();
    let events = world.total_events();
    let mem = world.mem_bytes() as f64;
    let peers = world.peers();
    let totals = world.totals();
    let fetched = (totals.p2p_rx + totals.cdn_rx).max(1);
    let point = Point {
        label,
        peers,
        events,
        events_per_sec: events as f64 / secs.max(1e-9),
        bytes_per_peer: mem / peers as f64,
        peers_per_gb: peers as f64 / (mem / (1u64 << 30) as f64),
        offload_pct: 100.0 * totals.p2p_rx as f64 / fetched as f64,
        completed_share: totals.completed as f64 / peers as f64,
        mode: report.mode,
        shards,
    };
    (point, world.table())
}

/// Extracts the number following `key` in a flat JSON text.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The committed 10k-peer events/sec from a previously written
/// `BENCH_swarm.json`, if one exists in the working directory.
fn committed_eps_10k() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_swarm.json").ok()?;
    json_f64(&text, "\"events_per_sec_10k\": ")
}

/// Value of a `--flag value` or `--flag=value` argument.
fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|v| v.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let xl = std::env::args().any(|a| a == "--xl");
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes a u64"))
        .unwrap_or(1);
    let host = host_parallelism();

    if quick {
        // Determinism gate: the 10k world's table must be byte-identical
        // at every shard count (the sharded engine's core contract).
        let mut cfg = SwarmConfig::quick(10_000);
        cfg.seed = seed;
        let mut reference = None;
        let mut point = None;
        for k in [1usize, 2, 4, 8] {
            let (p, table) = run_point("10k", cfg.clone(), k);
            match &reference {
                None => reference = Some(table),
                Some(r) => assert!(
                    *r == table,
                    "result table diverged between 1 and {k} shards"
                ),
            }
            if k == 1 {
                point = Some(p);
            }
        }
        let p = point.expect("k=1 ran");
        println!(
            "swarm 10k: {:.0} ev/s, {:.0} B/peer, {:.0} peers/GB, offload {:.1}%, mode {}",
            p.events_per_sec, p.bytes_per_peer, p.peers_per_gb, p.offload_pct, p.mode
        );
        assert!(
            p.peers_per_gb >= PEERS_PER_GB_FLOOR,
            "peers/GB fell below the floor ({:.0} < {PEERS_PER_GB_FLOOR:.0}; \
             {:.0} bytes/peer)",
            p.peers_per_gb,
            p.bytes_per_peer
        );
        match committed_eps_10k() {
            Some(committed) => {
                println!(
                    "events_per_sec_10k: {:.0} (committed {committed:.0}, ratio {:.2})",
                    p.events_per_sec,
                    p.events_per_sec / committed
                );
                assert!(
                    p.events_per_sec >= committed * 0.90,
                    "swarm event throughput regressed >10% vs committed \
                     BENCH_swarm.json ({:.0} vs {committed:.0} ev/s)",
                    p.events_per_sec
                );
            }
            None => {
                eprintln!("note: no committed BENCH_swarm.json; skipping the regression gate");
            }
        }
        return;
    }

    let shards = auto_shards();
    let seeded = |peers: u32| {
        let mut cfg = SwarmConfig::scale(peers);
        cfg.seed = seed;
        cfg
    };
    let mut points = vec![
        run_point("10k", seeded(10_000), shards).0,
        run_point("100k", seeded(100_000), shards).0,
    ];
    if xl {
        points.push(run_point("1m", seeded(1_000_000), shards).0);
    }

    let mut json = format!(
        "{{\n  \"host_parallelism\": {host},\n  \"shards\": {shards},\n  \
         \"mode\": \"{}\",\n",
        points[0].mode
    );
    for p in &points {
        println!(
            "swarm {:>4}: {:>8} peers, {:>9} events, {:>10.0} ev/s, \
             {:>5.0} B/peer, {:>9.0} peers/GB, offload {:>5.1}%, \
             completed {:>5.1}%, {} x{}",
            p.label,
            p.peers,
            p.events,
            p.events_per_sec,
            p.bytes_per_peer,
            p.peers_per_gb,
            p.offload_pct,
            100.0 * p.completed_share,
            p.mode,
            p.shards
        );
        json.push_str(&format!(
            "  \"peers_{l}\": {},\n  \"events_{l}\": {},\n  \
             \"events_per_sec_{l}\": {:.0},\n  \"bytes_per_peer_{l}\": {:.0},\n  \
             \"peers_per_gb_{l}\": {:.0},\n  \"offload_pct_{l}\": {:.1},\n  \
             \"completed_share_{l}\": {:.3},\n",
            p.peers,
            p.events,
            p.events_per_sec,
            p.bytes_per_peer,
            p.peers_per_gb,
            p.offload_pct,
            p.completed_share,
            l = p.label
        ));
    }
    json.push_str(&format!(
        "  \"peers_per_gb_floor\": {PEERS_PER_GB_FLOOR:.0}\n}}\n"
    ));
    std::fs::write("BENCH_swarm.json", &json).expect("write BENCH_swarm.json");
    print!("{json}");

    for p in &points {
        assert!(
            p.peers_per_gb >= PEERS_PER_GB_FLOOR,
            "{}: peers/GB fell below the floor ({:.0} < {PEERS_PER_GB_FLOOR:.0})",
            p.label,
            p.peers_per_gb
        );
        assert!(
            p.completed_share > 0.95,
            "{}: only {:.1}% of peers finished playback within the deadline",
            p.label,
            100.0 * p.completed_share
        );
    }
}

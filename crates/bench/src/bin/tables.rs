//! Prints every reproduced table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p pdn-bench --bin tables            # everything
//! cargo run --release -p pdn-bench --bin tables -- table5  # one artifact
//! ```
//!
//! Artifacts: `table1 table2 table3 table4 table5 table6 fig4 fig5
//! freeriding ipleak token mitigation`.

use pdn_bench::*;
use pdn_detector::DetectionReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let seed = SEED;

    if ["table1", "table2", "table3", "table4"]
        .iter()
        .any(|t| want(t))
    {
        let (_, report) = detection_report(seed);
        if want("table1") {
            println!("{}", report.render_table1());
        }
        if want("table2") {
            println!(
                "{}",
                DetectionReport::render_confirmed(
                    &report.table2,
                    "TABLE II: Confirmed PDN websites"
                )
            );
        }
        if want("table3") {
            println!(
                "{}",
                DetectionReport::render_confirmed(&report.table3, "TABLE III: Confirmed PDN apps")
            );
        }
        if want("table4") {
            println!("{}", report.render_table4());
        }
    }

    if want("freeriding") {
        let s = freeriding_study(seed);
        println!(
            "§IV-B field study: {} keys extracted, {} valid, {} expired",
            s.tested, s.valid, s.expired
        );
        println!(
            "  cross-domain vulnerable: {} / {}    domain-spoofing vulnerable: {} / {}\n",
            s.cross_domain_vulnerable, s.valid, s.spoof_vulnerable, s.valid
        );
    }

    if want("table5") {
        println!("{}", table5(seed).render());
    }

    if want("table6") {
        println!("{}", table6(300, seed).render());
    }

    if want("fig4") {
        let fig = figure4(120, seed);
        println!("FIGURE 4: Resource consumption of serving as a PDN peer");
        println!(
            "{:<9} {:>8} {:>10} {:>10} {:>10}",
            "viewer", "cpu", "mem MB", "rx MB", "tx MB"
        );
        for m in [&fig.no_peer, &fig.peer_a, &fig.peer_b] {
            println!(
                "{:<9} {:>7.1}% {:>10.1} {:>10.1} {:>10.1}",
                m.label,
                m.summary.mean_cpu * 100.0,
                m.summary.mean_mem_bytes / 1e6,
                m.summary.total_rx as f64 / 1e6,
                m.summary.total_tx as f64 / 1e6
            );
        }
        println!(
            "overhead vs no-peer: +{:.0}% CPU, +{:.0}% memory (paper: +15% / +10%)\n",
            fig.cpu_overhead() * 100.0,
            fig.mem_overhead() * 100.0
        );
    }

    if want("fig5") {
        println!("FIGURE 5: Bandwidth consumption of serving multiple peers");
        println!(
            "{:>9} {:>12} {:>12} {:>9}",
            "neighbors", "upload MB", "download MB", "up/down"
        );
        for p in figure5(5, 90, seed) {
            println!(
                "{:>9} {:>12.1} {:>12.1} {:>8.2}x",
                p.neighbors,
                p.seeder_tx as f64 / 1e6,
                p.seeder_rx as f64 / 1e6,
                p.upload_ratio()
            );
        }
        println!();
    }

    if want("ipleak") {
        let (huya, rt) = ip_leak_wild(7.0, seed);
        println!("§IV-D IP leak in the wild (one week, single controlled peer):");
        for r in [&huya, &rt] {
            println!(
                "  {:<10} unique {:>6} (public {:>6}, bogons {:>4}: {} private / {} nat / {} reserved)  \
                 countries {:>3}  cities {:>4}  top share {:.0}%",
                r.name, r.unique_ips, r.public_ips, r.bogons, r.bogon_private, r.bogon_cgnat,
                r.bogon_reserved, r.countries.len(), r.cities, r.top_country_share() * 100.0
            );
        }
        println!(
            "  total: {} unique IPs (paper: 7,740)\n",
            huya.unique_ips + rt.unique_ips
        );
    }

    if want("token") {
        let t = token_defense(seed);
        println!(
            "§V-A token defense: legit={} cross-video-rejected={} replay-rejected={} \
             ttl-rejected={} token={}B (paper: 283B)\n",
            t.legit_flow_works,
            t.cross_video_rejected,
            t.replay_rejected,
            t.expired_rejected,
            t.token_bytes
        );
    }

    if want("mitigation") {
        let (huya_b, rt_b) = ip_leak_wild(2.0, seed);
        let (huya_m, rt_m) = privacy_mitigation(2.0, seed);
        println!("§V-C same-country matching (2-day runs, US observer):");
        println!(
            "  Huya TV : {} → {} visible IPs (paper: none visible)",
            huya_b.unique_ips, huya_m.public_ips
        );
        println!(
            "  RT News : {} → {} visible IPs (paper: 35% remain)",
            rt_b.unique_ips, rt_m.unique_ips
        );
        let (p2p, relayed, leaked) = pdn_core::defense::privacy::evaluate_relay_world(seed);
        println!(
            "  TURN relay world: {} KB P2P through the relay ({} KB relayed), \
             real IPs leaked: {leaked}\n",
            p2p / 1000,
            relayed / 1000
        );
    }
}

//! Emits `BENCH_sim.json`: wall-clock numbers for the simulation engine —
//! the calendar event queue vs the old heap+hashmap scheduler on a churn
//! microbench, and the pooled table5+ablations workload serial vs
//! parallel, with a byte-identity check across worker counts.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin sim_bench [-- --quick | --profile]
//! ```
//!
//! `--quick` runs the pooled workload once, serially, and fails if it
//! regressed more than 10% against the committed `BENCH_sim.json` — the
//! CI guard `scripts/check.sh` uses. No JSON is written in quick mode.
//!
//! `--profile` runs the workload once, serially, with the simnet per-phase
//! profiler on, and prints the tick/signal/p2p/http/crypto/capture
//! breakdown (`pdn_simnet::profile`). No JSON is written.

use std::time::{Duration, Instant};

use pdn_bench::ablations::{ablation_suite, AblationConfig};
use pdn_bench::{table5_pooled, SEED};
use pdn_core::WorldPool;
use pdn_simnet::{profile, Event, EventQueue, HeapMapQueue, NodeId, SimRng, SimTime};

const RUNS: usize = 9;

/// Events pushed through each queue per timing run.
const CHURN_EVENTS: u64 = 400_000;

/// Steady-state events in flight during the churn.
const IN_FLIGHT: u64 = 4_096;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn timer(token: u64) -> Event {
    Event::Timer {
        node: NodeId(0),
        token,
    }
}

/// The churn workload both queues run: keep `IN_FLIGHT` events scheduled,
/// pop one / push one until `CHURN_EVENTS` have cycled. Delays mix the
/// near-term wheel band with occasional far-future overflow pushes, like
/// a streaming world's mix of packet deliveries and session timers.
fn churn<Q>(
    q: &mut Q,
    push: fn(&mut Q, SimTime, Event),
    pop: fn(&mut Q) -> Option<(SimTime, Event)>,
) {
    let mut rng = SimRng::seed(7);
    let mut now = SimTime::ZERO;
    let mut token = 0u64;
    for _ in 0..IN_FLIGHT {
        push(
            q,
            now + Duration::from_nanos(rng.range(0..50_000_000)),
            timer(token),
        );
        token += 1;
    }
    while token < CHURN_EVENTS {
        let (at, _) = pop(q).expect("queue stays primed");
        now = at;
        let delay_ns = if rng.chance(0.95) {
            rng.range(0..50_000_000) // wheel band
        } else {
            rng.range(0..5_000_000_000) // overflow tier
        };
        push(q, now + Duration::from_nanos(delay_ns), timer(token));
        token += 1;
    }
    while pop(q).is_some() {}
}

/// Extracts the number following `key` in a flat JSON text.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The committed `workload_serial_ms` from a previously written
/// `BENCH_sim.json`, if one exists in the working directory.
fn committed_serial_ms() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_sim.json").ok()?;
    json_f64(&text, "\"workload_serial_ms\": ")
}

/// The committed p2p+crypto time from the phases block of a previously
/// written `BENCH_sim.json`.
fn committed_hot_ms() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_sim.json").ok()?;
    let p2p = json_f64(&text, "\"p2p\": {\"ms\": ")?;
    let crypto = json_f64(&text, "\"crypto\": {\"ms\": ")?;
    Some(p2p + crypto)
}

/// The p2p+crypto time of one profiled pass, probe-calibrated the same
/// way the JSON phases block is. Gated as absolute milliseconds, not as
/// a share of the profiled wall: the wall includes cold phases (http,
/// tick) whose run-to-run noise on a shared host would flow into the
/// ratio, while the calibrated hot time itself is stable within ~3%.
fn hot_ms(snap: &[profile::PhaseTotals; 6]) -> f64 {
    snap.iter()
        .filter(|t| matches!(t.phase, profile::Phase::P2p | profile::Phase::Crypto))
        .map(|t| t.calibrated_nanos() as f64 / 1e6)
        .sum()
}

/// Runs one profiled serial workload pass and returns the phase totals.
fn profiled_pass(workload: &impl Fn(&WorldPool) -> String) -> (f64, [profile::PhaseTotals; 6]) {
    profile::reset();
    profile::set_enabled(true);
    let t = Instant::now();
    std::hint::black_box(workload(&WorldPool::serial()));
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    profile::set_enabled(false);
    (wall_ms, profile::snapshot())
}

fn main() {
    let workload = |pool: &WorldPool| {
        let mut out = table5_pooled(SEED, pool).render();
        out.push_str(&ablation_suite(AblationConfig::full(), SEED, pool).render());
        out
    };

    // `--profile`: one serial pass with phase accounting on; the report is
    // self-inclusive per phase (crypto nests inside tick/p2p).
    if std::env::args().any(|a| a == "--profile") {
        let probe_ns = profile::calibrate_probe_cost();
        let (wall_ms, snap) = profiled_pass(&workload);
        let overhead_ms = snap
            .iter()
            .map(|t| t.count)
            .sum::<u64>()
            .saturating_mul(probe_ns) as f64
            / 1e6;
        println!(
            "workload_serial_ms: {wall_ms:.2} (profiled; probe {probe_ns} ns/entry, \
             overhead {overhead_ms:.2} ms)"
        );
        for t in snap {
            println!(
                "  phase {:<8} {:>10.2} ms  ({} entries)",
                t.phase.label(),
                t.calibrated_nanos() as f64 / 1e6,
                t.count
            );
        }
        return;
    }

    // `--quick`: one serial workload run gated against the committed
    // number; the wire/queue microbenches have their own binaries.
    if std::env::args().any(|a| a == "--quick") {
        let t = Instant::now();
        std::hint::black_box(workload(&WorldPool::serial()));
        let serial_ms = t.elapsed().as_secs_f64() * 1e3;
        match committed_serial_ms() {
            Some(committed) => {
                println!(
                    "workload_serial_ms: {serial_ms:.2} (committed {committed:.2}, \
                     ratio {:.2})",
                    serial_ms / committed
                );
                assert!(
                    serial_ms <= committed * 1.10,
                    "serial workload regressed >10% vs committed BENCH_sim.json \
                     ({serial_ms:.2} ms vs {committed:.2} ms)"
                );
            }
            None => {
                println!("workload_serial_ms: {serial_ms:.2}");
                eprintln!("note: no committed BENCH_sim.json; skipping the regression gate");
            }
        }
        // Per-phase budget gate: calibrated p2p+crypto time must not
        // regress >10% over the committed run — catching hot-path
        // regressions that total wall time alone can hide behind
        // improvements elsewhere.
        if let Some(committed) = committed_hot_ms() {
            profile::calibrate_probe_cost();
            let (_profiled_ms, snap) = profiled_pass(&workload);
            let hot = hot_ms(&snap);
            println!(
                "p2p+crypto profiled ms: {hot:.2} (committed {committed:.2}, \
                 ratio {:.2})",
                hot / committed
            );
            assert!(
                hot <= committed * 1.10,
                "p2p+crypto profiled time regressed >10% vs committed \
                 BENCH_sim.json ({hot:.2} ms vs {committed:.2} ms)"
            );
        } else {
            eprintln!("note: no committed phase times; skipping the phase budget gate");
        }
        return;
    }

    // --- Queue microbench: EventQueue vs the old heap+hashmap design. ---
    // Runs interleave the two queues so slow host phases (this may share a
    // single core) penalize both sides alike.
    let mut new_samples = Vec::new();
    let mut old_samples = Vec::new();
    for _ in 0..RUNS {
        new_samples.push(time_ms(|| {
            let mut q = EventQueue::new();
            churn(
                &mut q,
                |q, at, ev| {
                    q.push(at, ev);
                },
                EventQueue::pop,
            );
        }));
        old_samples.push(time_ms(|| {
            let mut q = HeapMapQueue::new();
            churn(&mut q, HeapMapQueue::push, HeapMapQueue::pop);
        }));
    }
    let new_ms = median(new_samples);
    let old_ms = median(old_samples);
    let new_eps = CHURN_EVENTS as f64 / (new_ms / 1e3);
    let old_eps = CHURN_EVENTS as f64 / (old_ms / 1e3);

    // `sim_bench queue` stops after the microbench (no JSON written).
    if std::env::args().nth(1).as_deref() == Some("queue") {
        println!(
            "queue: new {new_eps:.0} ev/s, old {old_eps:.0} ev/s, speedup {:.2}x",
            new_eps / old_eps
        );
        return;
    }

    // --- Workload: table5 + full ablation suite, serial vs pooled. ---
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let reference = workload(&WorldPool::serial());
    let mut identical = true;
    for workers in [2, 4, 8] {
        identical &= workload(&WorldPool::new(workers)) == reference;
    }

    let serial_ms = median(
        (0..3)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(workload(&WorldPool::serial()));
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    );
    let parallel_ms = median(
        (0..3)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(workload(&WorldPool::new(8)));
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    );

    // One profiled pass for the per-phase attribution (wall time of this
    // pass is reported separately — the guards add measurement overhead).
    // Probe cost is calibrated first and subtracted per entry, so phases
    // with many cheap entries no longer overstate their share.
    let probe_ns = profile::calibrate_probe_cost();
    let (profiled_ms, snap) = profiled_pass(&workload);
    let overhead_ms = snap
        .iter()
        .map(|t| t.count)
        .sum::<u64>()
        .saturating_mul(probe_ns) as f64
        / 1e6;
    let phase_json: Vec<String> = snap
        .iter()
        .map(|t| {
            format!(
                "\"{}\": {{\"ms\": {:.2}, \"entries\": {}}}",
                t.phase.label(),
                t.calibrated_nanos() as f64 / 1e6,
                t.count
            )
        })
        .collect();

    // The execution mode the 8-worker pool actually picked on this host
    // ("inline" on 1-core hosts, where spawning threads only loses time).
    let pool_mode = WorldPool::new(8).mode();
    let json = format!(
        "{{\n  \"host_parallelism\": {host},\n  \"queue_churn_events\": {CHURN_EVENTS},\n  \
         \"queue_events_per_sec_new\": {new_eps:.0},\n  \"queue_events_per_sec_old\": {old_eps:.0},\n  \
         \"queue_speedup\": {:.2},\n  \"workload_serial_ms\": {serial_ms:.2},\n  \
         \"workload_parallel_ms\": {parallel_ms:.2},\n  \"workload_speedup\": {:.2},\n  \
         \"workload_profiled_ms\": {profiled_ms:.2},\n  \
         \"profiler_overhead_ms\": {overhead_ms:.2},\n  \"probe_cost_ns\": {probe_ns},\n  \
         \"phases\": {{{}}},\n  \
         \"workers\": 8,\n  \"pool_mode\": \"{pool_mode}\",\n  \
         \"identical_across_workers\": {identical}\n}}\n",
        new_eps / old_eps,
        serial_ms / parallel_ms,
        phase_json.join(", "),
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");

    assert!(
        identical,
        "pooled workload must be byte-identical to serial"
    );
    assert!(
        new_eps / old_eps >= 2.0,
        "calendar queue must be >=2x the heap+hashmap scheduler (got {:.2}x)",
        new_eps / old_eps
    );
    // The 8-worker wall-time gate only means something with cores to run
    // on; on small hosts the pool degrades to threads fighting for one
    // core (same stance as scan_bench's single-core fallback).
    if host >= 4 {
        assert!(
            serial_ms / parallel_ms >= 3.0,
            "pooled workload must be >=3x serial at 8 workers (got {:.2}x)",
            serial_ms / parallel_ms
        );
    } else {
        eprintln!("note: host has {host} core(s); skipping the 8-worker >=3x wall-time gate");
    }
}

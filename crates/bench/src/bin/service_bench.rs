//! Emits `BENCH_service.json`: the open-loop serving numbers for the
//! signaling/tracker plane (`pdn_provider::service`) — knee throughput,
//! p50/p99/p999 join-to-first-segment and signaling RTT per scenario,
//! goodput under 2x / 10x overload (which must plateau via explicit
//! denial, not collapse) — plus the federated tracker plane: a K=1/2/4
//! sweep over steady / flash-crowd / failover traffic with real
//! cross-region session handoff, aggregate-knee scaling, and the
//! per-join CPU A/B of the zero-copy batched join path against the
//! legacy owned assembly.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin service_bench \
//!     [-- --quick | --federation] [--seed N]
//! ```
//!
//! Throughput and goodput are **ramp-normalized**: counters only count
//! completions inside `(ramp, run_for]`, so the short `--quick` runs and
//! the long full runs measure the same steady-state window and their
//! numbers are directly comparable (the raw whole-run rates diluted the
//! ramp proportionally to run length, which made the quick 2x goodput
//! read *higher* than the full-run plateau).
//!
//! Every scenario runs twice and the deterministic result row must come
//! back byte-identical; federation scenarios additionally run under both
//! inline and threaded shard scheduling and the rows must not differ by
//! one byte. Wall-clock throughput is reported separately and never
//! gated on.
//!
//! `--quick` runs a small three-point suite plus the federation gate
//! (K=4 aggregate knee >= 3x K=1, shard-mode identity, per-join CPU
//! speedup) and fails on SLO breach or regression against the committed
//! `BENCH_service.json`. No JSON is written in quick mode — this is the
//! `scripts/check.sh` guard. `--federation` runs only the federation
//! sweep and prints it (no JSON write — the focused dev loop).
//!
//! `--seed N` reruns everything under a different world seed (default 1;
//! the committed JSON is seed 1).

use std::time::{Duration, Instant};

use bytes::Bytes;
use pdn_provider::service::{
    run_federation, run_service, CaptureScope, FederationConfig, FederationReport, InboxConfig,
    ServiceConfig, ServiceReport,
};
use pdn_provider::signaling::{AdmissionBatch, SignalingServer};
use pdn_provider::{CustomerAccount, ProviderProfile, SignalMsg};
use pdn_simnet::shard::ShardMode;
use pdn_simnet::{Addr, GeoIpService, RatePlan, SimRng, SimTime};
use pdn_webrtc::{Candidate, CandidateKind, Certificate, SessionDescription};

/// p999 join-to-first-segment budget for a healthy (under-knee) load,
/// global audience against a single-region tracker.
const SLO_JTFS_P999_MS: f64 = 1_000.0;

/// Goodput at 10x overload must hold at least this share of goodput at
/// 2x — the plateau criterion (shedding, not collapsing).
const PLATEAU_10X_VS_2X: f64 = 0.7;

/// Quick-mode plateau: goodput at 2x overload vs the knee point.
const PLATEAU_2X_VS_KNEE: f64 = 0.6;

/// K=4 aggregate knee must reach this multiple of the K=1 knee in
/// virtual time (shared-nothing regions; spill and handoff are the only
/// couplings).
const FED_K4_SCALING_FLOOR: f64 = 3.0;

/// The batched zero-copy join path must beat the legacy owned assembly
/// by this factor in wall ns per admitted join.
const PER_JOIN_CPU_SPEEDUP_FLOOR: f64 = 1.5;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// One scenario's deterministic result row (everything but wall time).
struct Row {
    name: String,
    offered_per_sec: f64,
    json: String,
    report: ServiceReport,
    cfg: ServiceConfig,
}

impl Row {
    /// Ramp-normalized goodput (first segments inside the measured
    /// window per second).
    fn goodput(&self) -> f64 {
        self.report.measured_goodput_per_sec(&self.cfg)
    }

    /// Ramp-normalized admission rate — the knee unit.
    fn joins_ok_per_sec(&self) -> f64 {
        self.report.measured_joins_ok_per_sec(&self.cfg)
    }
}

/// Renders the deterministic JSON row for a report. Byte-identity of this
/// string across reruns (and shard modes) is the determinism gate.
fn render_row(name: &str, offered: f64, cfg: &ServiceConfig, r: &ServiceReport) -> String {
    format!(
        concat!(
            "{{\"name\": \"{}\", \"offered_per_sec\": {:.0}, \"arrivals\": {}, ",
            "\"joins_ok\": {}, \"joins_denied\": {}, \"turned_away\": {}, ",
            "\"first_segments\": {}, \"leaves\": {}, \"goodput_per_sec\": {:.1}, ",
            "\"measured_goodput_per_sec\": {:.1}, \"measured_joins_ok_per_sec\": {:.1}, ",
            "\"jtfs_p50_ms\": {:.3}, \"jtfs_p99_ms\": {:.3}, \"jtfs_p999_ms\": {:.3}, ",
            "\"rtt_p50_ms\": {:.3}, \"rtt_p99_ms\": {:.3}, \"rtt_p999_ms\": {:.3}, ",
            "\"shed_greeter\": {}, \"shed_gossip\": {}, \"shed_integrity\": {}, ",
            "\"denied_at_inbox\": {}, \"backpressured\": {}, ",
            "\"inbox_peak_depth\": {}, \"inbox_peak_bytes\": {}, ",
            "\"batch_hits\": {}, \"served_frames\": {}, \"peak_clients\": {}, ",
            "\"capture_kept\": {}, \"capture_dropped\": {}, \"capture_filtered\": {}, ",
            "\"capture_drop_pct\": {:.2}, ",
            "\"cdn_requests\": {}, \"cdn_egress_bytes\": {}}}"
        ),
        name,
        offered,
        r.arrivals,
        r.joins_ok,
        r.joins_denied,
        r.turned_away,
        r.first_segments,
        r.leaves,
        r.goodput_per_sec(cfg.run_for),
        r.measured_goodput_per_sec(cfg),
        r.measured_joins_ok_per_sec(cfg),
        ms(r.jtfs.quantile(0.50)),
        ms(r.jtfs.quantile(0.99)),
        ms(r.jtfs.quantile(0.999)),
        ms(r.rtt.quantile(0.50)),
        ms(r.rtt.quantile(0.99)),
        ms(r.rtt.quantile(0.999)),
        r.shed.shed_greeter,
        r.shed.shed_gossip,
        r.shed.shed_integrity,
        r.shed.denied_joins,
        r.shed.backpressured,
        r.shed.peak_depth,
        r.shed.peak_bytes,
        r.batch_hits,
        r.served_frames,
        r.peak_clients,
        r.capture_kept,
        r.capture_dropped,
        r.capture_filtered,
        r.capture_drop_pct(),
        r.cdn_requests,
        r.cdn_egress_bytes,
    )
}

/// Runs one scenario twice, asserts the deterministic row is
/// byte-identical, and returns the row plus the first run's wall seconds.
fn run_scenario(name: &str, offered: f64, cfg: &ServiceConfig) -> (Row, f64) {
    let t = Instant::now();
    let report = run_service(cfg);
    let wall = t.elapsed().as_secs_f64();
    let json = render_row(name, offered, cfg, &report);
    let rerun = render_row(name, offered, cfg, &run_service(cfg));
    assert!(
        json == rerun,
        "scenario {name} is nondeterministic:\n  {json}\n  {rerun}"
    );
    // Bounded memory: the pool cap held and the inboxes never outgrew
    // their configured queue caps.
    assert!(report.peak_clients <= cfg.max_clients as u64);
    let cap_total = (cfg.inbox.join_cap
        + cfg.inbox.integrity_cap
        + cfg.inbox.gossip_cap
        + cfg.inbox.greeter_cap) as u64;
    assert!(
        report.shed.peak_depth <= cap_total,
        "{name}: inbox depth {} exceeded the cap total {cap_total}",
        report.shed.peak_depth
    );
    (
        Row {
            name: name.to_string(),
            offered_per_sec: offered,
            json,
            report,
            cfg: cfg.clone(),
        },
        wall,
    )
}

/// The base serving config every scenario derives from. Scenarios only
/// assert on signaling-plane counters, so the capture ring records only
/// tracker-bound frames — CDN and reply traffic no longer churn the ring,
/// and `capture_drop_pct` reads on the traffic the assertions care about.
fn base(seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(RatePlan::Steady { per_sec: 0.0 });
    cfg.seed = seed;
    cfg.run_for = Duration::from_secs(10);
    cfg.tick = Duration::from_millis(5);
    cfg.tick_budget = 60;
    cfg.inbox = InboxConfig::default();
    cfg.mean_session = Duration::from_secs(8);
    cfg.stats_every = Duration::from_secs(4);
    cfg.max_clients = 60_000;
    cfg.ramp = Duration::from_secs(1);
    cfg.capture = CaptureScope::ServerSignaling;
    cfg
}

/// The small suite `--quick` gates on; full mode runs it too so its
/// numbers land in the committed JSON for future gating.
fn quick_suite(seed: u64) -> (Row, Row, Row) {
    let mut cfg = base(seed);
    cfg.run_for = Duration::from_secs(4);
    cfg.mean_session = Duration::from_secs(3);
    cfg.stats_every = Duration::from_secs(2);
    let nominal = cfg.nominal_capacity_per_sec();

    let mut light = cfg.clone();
    light.plan = RatePlan::Steady {
        per_sec: nominal * 0.4,
    };
    let (light_row, _) = run_scenario("quick_light", nominal * 0.4, &light);

    let mut knee = cfg.clone();
    knee.plan = RatePlan::Steady { per_sec: nominal };
    let (knee_row, _) = run_scenario("quick_knee", nominal, &knee);

    let mut over = cfg;
    over.plan = RatePlan::Steady {
        per_sec: nominal * 2.0,
    };
    let (over_row, _) = run_scenario("quick_2x", nominal * 2.0, &over);

    (light_row, knee_row, over_row)
}

// ---------------------------------------------------------------------
// Federation sweep
// ---------------------------------------------------------------------

/// One federated scenario's deterministic row plus its run report.
struct FedRow {
    json: String,
    rep: FederationReport,
    cfg_base: ServiceConfig,
}

impl FedRow {
    fn aggregate_joins_ok_per_sec(&self) -> f64 {
        self.rep.aggregate.measured_joins_ok_per_sec(&self.cfg_base)
    }
}

/// Renders the deterministic federation row: the merged aggregate columns
/// plus the cross-region story (spill, migration, handoff latency).
/// Shard mode and wall time are deliberately excluded — this string must
/// be byte-identical across inline/threaded runs.
fn render_fed_row(name: &str, fed: &FederationConfig, rep: &FederationReport) -> String {
    let agg = render_row(
        name,
        fed.base.plan.peak() * fed.regions as f64,
        &fed.base,
        &rep.aggregate,
    );
    // Splice the federation columns in before the closing brace.
    let body = agg.strip_suffix('}').expect("render_row ends with }");
    format!(
        concat!(
            "{}, \"regions\": {}, \"windows\": {}, \"exchanged\": {}, ",
            "\"spilled\": {}, \"migrated_out\": {}, \"migrated_in\": {}, ",
            "\"handoffs_denied\": {}, \"handoffs_turned_away\": {}, ",
            "\"handoffs_stranded\": {}, \"dead_dropped\": {}, ",
            "\"handoff_p50_ms\": {:.3}, \"handoff_p99_ms\": {:.3}}}"
        ),
        body,
        rep.regions,
        rep.windows,
        rep.exchanged,
        rep.spilled,
        rep.migrated_out,
        rep.migrated_in,
        rep.handoffs_denied,
        rep.handoffs_turned_away,
        rep.handoffs_stranded,
        rep.dead_dropped,
        ms(rep.handoff_latency.quantile(0.50)),
        ms(rep.handoff_latency.quantile(0.99)),
    )
}

/// Runs one federated scenario three ways — inline twice (double-run
/// determinism) and threaded once (shard-mode identity) — and asserts
/// all three rows byte-identical.
fn run_fed_scenario(name: &str, fed: &FederationConfig) -> (FedRow, f64) {
    let mut cfg = fed.clone();
    cfg.mode = ShardMode::Inline;
    let t = Instant::now();
    let rep = run_federation(&cfg);
    let wall = t.elapsed().as_secs_f64();
    let json = render_fed_row(name, &cfg, &rep);
    let rerun = render_fed_row(name, &cfg, &run_federation(&cfg));
    assert!(
        json == rerun,
        "federated scenario {name} is nondeterministic:\n  {json}\n  {rerun}"
    );
    cfg.mode = ShardMode::Threaded;
    let threaded = render_fed_row(name, &cfg, &run_federation(&cfg));
    assert!(
        json == threaded,
        "federated scenario {name} differs across shard modes:\n  {json}\n  {threaded}"
    );
    (
        FedRow {
            json,
            rep,
            cfg_base: fed.base.clone(),
        },
        wall,
    )
}

/// The per-region template for the federation sweep (shorter than the
/// single-tracker rows so the K x scenario x mode cross product stays
/// affordable; ramp normalization keeps the rates comparable anyway).
fn fed_base(seed: u64) -> ServiceConfig {
    let mut cfg = base(seed);
    cfg.run_for = Duration::from_secs(6);
    cfg.mean_session = Duration::from_secs(4);
    cfg.stats_every = Duration::from_secs(3);
    cfg
}

/// The K=1/2/4 x steady/flash-crowd/failover sweep. Returns the rows and
/// the (K=1 steady, K=4 steady) aggregate knees for the scaling gate.
fn federation_sweep(seed: u64) -> (Vec<FedRow>, f64, f64) {
    let template = fed_base(seed);
    let nominal = template.nominal_capacity_per_sec();
    let mut rows = Vec::new();
    let (mut k1_knee, mut k4_knee) = (0.0, 0.0);

    for k in [1usize, 2, 4] {
        // Steady at the per-region knee: the aggregate-scaling row.
        let mut fed = FederationConfig::new(k, RatePlan::Steady { per_sec: nominal });
        fed.base = template.clone();
        fed.base.plan = RatePlan::Steady { per_sec: nominal };
        let (row, wall) = run_fed_scenario(&format!("fed_k{k}_steady"), &fed);
        let agg = row.aggregate_joins_ok_per_sec();
        println!(
            "  {:>16}: {:>6.0} agg joins-ok/s across {k} region(s), {} windows, \
             {} exchanged, {:.1}s wall",
            format!("fed_k{k}_steady"),
            agg,
            row.rep.windows,
            row.rep.exchanged,
            wall
        );
        if k == 1 {
            k1_knee = agg;
        }
        if k == 4 {
            k4_knee = agg;
        }
        rows.push(row);

        // Flash crowd in every region at once, under a greeter flood.
        let mut fed = FederationConfig::new(
            k,
            RatePlan::FlashCrowd {
                base_per_sec: nominal * 0.5,
                mult: 6.0,
                at: SimTime::from_secs(2),
                dur: Duration::from_secs(2),
            },
        );
        fed.base = template.clone();
        fed.base.plan = RatePlan::FlashCrowd {
            base_per_sec: nominal * 0.5,
            mult: 6.0,
            at: SimTime::from_secs(2),
            dur: Duration::from_secs(2),
        };
        fed.base.greeter_per_sec = 2_000.0;
        // Flash spikes are exactly when spilling pays: joins queue past
        // the threshold at home while a neighbor still has headroom.
        fed.spill_threshold = fed.base.tick_budget as usize * 2;
        let (row, _) = run_fed_scenario(&format!("fed_k{k}_flash"), &fed);
        println!(
            "  {:>16}: spilled {} arrivals sideways, agg p999 JTFS {:>7.1} ms",
            format!("fed_k{k}_flash"),
            row.rep.spilled,
            ms(row.rep.aggregate.jtfs.quantile(0.999))
        );
        rows.push(row);

        // Real failover: region 0's tracker dies at t=3s; its sessions
        // migrate to the next region (at K=1 there is nowhere to go and
        // the row records exactly that).
        let mut fed = FederationConfig::new(
            k,
            RatePlan::Steady {
                per_sec: nominal * 0.6,
            },
        );
        fed.base = template.clone();
        fed.base.plan = RatePlan::Steady {
            per_sec: nominal * 0.6,
        };
        fed.fail_region = Some((0, Duration::from_secs(3)));
        let (row, _) = run_fed_scenario(&format!("fed_k{k}_failover"), &fed);
        println!(
            "  {:>16}: migrated {} out / {} in, handoff p99 {:>7.1} ms, dead-dropped {}",
            format!("fed_k{k}_failover"),
            row.rep.migrated_out,
            row.rep.migrated_in,
            ms(row.rep.handoff_latency.quantile(0.99)),
            row.rep.dead_dropped
        );
        rows.push(row);
    }
    (rows, k1_knee, k4_knee)
}

// ---------------------------------------------------------------------
// Per-join CPU A/B
// ---------------------------------------------------------------------

fn ab_sdp(seed: u64) -> SessionDescription {
    let mut rng = SimRng::seed(seed);
    SessionDescription {
        ice_ufrag: format!("u{seed}"),
        ice_pwd: format!("p{seed}"),
        fingerprint: Certificate::generate(&mut rng).fingerprint(),
        candidates: vec![Candidate::new(
            CandidateKind::Host,
            Addr::new(20, 0, 0, (seed % 250) as u8, 4000),
        )],
    }
}

fn ab_join_frame(seed: u64) -> Bytes {
    SignalMsg::Join {
        api_key: Some("key-svc".into()),
        token: None,
        origin: "svc.tv".into(),
        video: "v".into(),
        manifest_hash: "m0".into(),
        sdp: ab_sdp(seed),
    }
    .encode()
}

fn ab_addr(i: u32) -> Addr {
    Addr::new(40, (i >> 16) as u8, (i >> 8) as u8, i as u8, 6000)
}

fn ab_server(fast: bool) -> SignalingServer {
    let mut s = SignalingServer::new(ProviderProfile::peer5(), 1);
    s.set_join_fast_path(fast);
    s.accounts_mut().register(CustomerAccount::new(
        "svc",
        "key-svc",
        ["svc.tv".to_string()],
    ));
    s
}

/// Wall ns per admitted join through the batched admission path, warm
/// server, tick-sized chunks (one `AdmissionBatch` per chunk, like the
/// harness drain loop), best of three passes.
fn per_join_cpu_ns(fast: bool, joins: u32, chunk: usize) -> f64 {
    let geo = GeoIpService::new();
    let mut s = ab_server(fast);
    // Warm membership: every measured join is introduced to a full
    // neighbor set.
    let seeders: Vec<(Addr, Bytes)> = (1..=64u32)
        .map(|i| (ab_addr(i), ab_join_frame(i as u64)))
        .collect();
    let mut out = Vec::new();
    let mut batch = AdmissionBatch::new();
    s.handle_frames_batch_into(&seeders, SimTime::ZERO, &geo, &mut batch, &mut out);

    let mut best = f64::INFINITY;
    for pass in 0..3u32 {
        let first = 1_000 + pass * joins;
        let frames: Vec<(Addr, Bytes)> = (first..first + joins)
            .map(|i| (ab_addr(i), ab_join_frame(i as u64)))
            .collect();
        let now = SimTime::from_secs(1 + pass as u64);
        let t = Instant::now();
        for c in frames.chunks(chunk) {
            out.clear();
            batch.clear();
            s.handle_frames_batch_into(c, now, &geo, &mut batch, &mut out);
            std::hint::black_box(&out);
        }
        let ns = t.elapsed().as_nanos() as f64 / joins as f64;
        best = best.min(ns);
    }
    best
}

/// Per-join CPU A/B: the zero-copy batched path vs the legacy owned
/// `SignalMsg` assembly, identical traffic. Returns (fast ns, legacy ns).
fn per_join_cpu_ab(joins: u32) -> (f64, f64) {
    // Tick-sized chunks: the harness drains ~budget/4 joins per tick.
    let chunk = 32;
    let fast = per_join_cpu_ns(true, joins, chunk);
    let legacy = per_join_cpu_ns(false, joins, chunk);
    (fast, legacy)
}

fn gate_per_join_cpu(joins: u32) -> (f64, f64, f64) {
    let (fast, legacy) = per_join_cpu_ab(joins);
    let speedup = legacy / fast.max(1e-9);
    println!("  per-join CPU: fast {fast:.0} ns vs legacy {legacy:.0} ns ({speedup:.2}x)");
    assert!(
        speedup >= PER_JOIN_CPU_SPEEDUP_FLOOR,
        "batched zero-copy join path too slow: {fast:.0} ns/join vs legacy {legacy:.0} \
         ({speedup:.2}x < {PER_JOIN_CPU_SPEEDUP_FLOOR}x)"
    );
    (fast, legacy, speedup)
}

/// The `--quick` federation gate: K=4 aggregate knee floor vs K=1,
/// inline/threaded shard identity (inside `run_fed_scenario`), per-join
/// CPU floor. Small configs — this runs in check.sh.
fn quick_federation_gate(seed: u64) {
    let mut template = fed_base(seed);
    template.run_for = Duration::from_secs(3);
    template.mean_session = Duration::from_secs(2);
    let nominal = template.nominal_capacity_per_sec();
    template.plan = RatePlan::Steady { per_sec: nominal };

    let mut k1 = FederationConfig::new(1, template.plan.clone());
    k1.base = template.clone();
    let (r1, _) = run_fed_scenario("quick_fed_k1", &k1);
    let mut k4 = FederationConfig::new(4, template.plan.clone());
    k4.base = template.clone();
    let (r4, _) = run_fed_scenario("quick_fed_k4", &k4);
    let (a1, a4) = (
        r1.aggregate_joins_ok_per_sec(),
        r4.aggregate_joins_ok_per_sec(),
    );
    println!(
        "  federation quick: K=1 {a1:.0} -> K=4 {a4:.0} agg joins-ok/s ({:.2}x)",
        a4 / a1.max(1e-9)
    );
    assert!(
        a4 >= a1 * FED_K4_SCALING_FLOOR,
        "federation scaling collapsed: K=4 aggregate {a4:.0} joins-ok/s < \
         {FED_K4_SCALING_FLOOR}x K=1 {a1:.0}"
    );
    gate_per_join_cpu(2_000);
}

/// Extracts the number following `key` in a flat JSON text.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn committed_quick_knee() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_service.json").ok()?;
    json_f64(&text, "\"quick_knee_joins_ok_per_sec\": ")
}

/// Value of a `--flag value` or `--flag=value` argument.
fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|v| v.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fed_only = std::env::args().any(|a| a == "--federation");
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes a u64"))
        .unwrap_or(1);

    if quick {
        let (light, knee, over) = quick_suite(seed);
        let p999 = ms(light.report.jtfs.quantile(0.999));
        println!(
            "service quick: knee {:.0} joins-ok/s, light p999 JTFS {:.1} ms, 2x goodput {:.0}/s",
            knee.joins_ok_per_sec(),
            p999,
            over.goodput()
        );
        assert!(
            p999 <= SLO_JTFS_P999_MS,
            "SLO breach: p999 join-to-first-segment {p999:.1} ms > budget {SLO_JTFS_P999_MS} ms"
        );
        assert!(
            over.goodput() >= knee.goodput() * PLATEAU_2X_VS_KNEE,
            "overload collapse: 2x goodput {:.0}/s fell below {:.0}% of knee {:.0}/s",
            over.goodput(),
            PLATEAU_2X_VS_KNEE * 100.0,
            knee.goodput()
        );
        match committed_quick_knee() {
            Some(committed) => {
                let now = knee.joins_ok_per_sec();
                assert!(
                    now >= committed * 0.9,
                    "knee throughput regressed: {now:.0} joins-ok/s vs committed {committed:.0} \
                     (>10%)"
                );
                println!("  within 10% of committed {committed:.0} joins-ok/s");
            }
            None => println!("  no committed BENCH_service.json; skipping regression gate"),
        }
        quick_federation_gate(seed);
        return;
    }

    if fed_only {
        let (_, k1, k4) = federation_sweep(seed);
        let (fast, legacy, speedup) = gate_per_join_cpu(5_000);
        println!(
            "federation: K=1 {k1:.0} -> K=4 {k4:.0} agg joins-ok/s ({:.2}x), per-join CPU \
             {fast:.0} ns (legacy {legacy:.0} ns, {speedup:.2}x); no JSON written",
            k4 / k1.max(1e-9)
        );
        return;
    }

    let cfg = base(seed);
    let nominal = cfg.nominal_capacity_per_sec();
    let mut rows: Vec<Row> = Vec::new();
    let mut knee_wall_msgs_per_sec = 0.0;

    // Knee sweep: steady loads bracketing the analytic capacity. Leaves
    // share the join-critical budget, so the measured knee sits well
    // under `nominal` — that is the point of measuring it.
    for mult in [0.4, 0.7, 1.0, 1.3] {
        let mut c = cfg.clone();
        c.plan = RatePlan::Steady {
            per_sec: nominal * mult,
        };
        let name = format!("steady_{:.0}", nominal * mult);
        let (row, wall) = run_scenario(&name, nominal * mult, &c);
        if mult == 1.0 {
            knee_wall_msgs_per_sec = row.report.served_frames as f64 / wall.max(1e-9);
        }
        println!(
            "  {:>16}: {:>6.0} offered/s -> {:>6.0} good/s, p999 JTFS {:>8.1} ms, denied {}",
            row.name,
            row.offered_per_sec,
            row.goodput(),
            ms(row.report.jtfs.quantile(0.999)),
            row.report.joins_denied
        );
        rows.push(row);
    }
    let knee_joins_ok = rows
        .iter()
        .map(Row::joins_ok_per_sec)
        .fold(0.0f64, f64::max);

    // Flash crowd: breaking news at t=4s, 6x for 3s, under a greeter
    // flood the whole time.
    let mut flash = cfg.clone();
    flash.plan = RatePlan::FlashCrowd {
        base_per_sec: nominal * 0.5,
        mult: 6.0,
        at: SimTime::from_secs(4),
        dur: Duration::from_secs(3),
    };
    flash.greeter_per_sec = 5_000.0;
    let (row, _) = run_scenario("flash_crowd_6x", nominal * 3.0, &flash);
    println!(
        "  {:>16}: spike p999 JTFS {:>8.1} ms, denied {}, junk refused {}",
        row.name,
        ms(row.report.jtfs.quantile(0.999)),
        row.report.joins_denied,
        row.report.shed.shed_greeter + row.report.shed.backpressured
    );
    rows.push(row);

    // Regional failover as extra offered load on one tracker (the
    // federated rows below model the migration itself).
    let mut failover = cfg.clone();
    failover.plan = RatePlan::Failover {
        base_per_sec: nominal * 0.6,
        mult: 2.5,
        at: SimTime::from_secs(5),
    };
    let (row, _) = run_scenario("failover_2p5x", nominal * 1.5, &failover);
    println!(
        "  {:>16}: post-failover goodput {:>6.0}/s, p999 JTFS {:>8.1} ms",
        row.name,
        row.goodput(),
        ms(row.report.jtfs.quantile(0.999))
    );
    rows.push(row);

    // Sustained overload: goodput must plateau via explicit denial.
    let mut over2 = cfg.clone();
    over2.plan = RatePlan::Steady {
        per_sec: nominal * 2.0,
    };
    let (row2x, _) = run_scenario("overload_2x", nominal * 2.0, &over2);
    let mut over10 = cfg.clone();
    over10.plan = RatePlan::Steady {
        per_sec: nominal * 10.0,
    };
    let (row10x, _) = run_scenario("overload_10x", nominal * 10.0, &over10);
    for r in [&row2x, &row10x] {
        println!(
            "  {:>16}: {:>6.0} offered/s -> {:>6.0} good/s, denied {}, capture drop {:.1}%",
            r.name,
            r.offered_per_sec,
            r.goodput(),
            r.report.joins_denied,
            r.report.capture_drop_pct()
        );
    }
    assert!(
        row10x.goodput() >= row2x.goodput() * PLATEAU_10X_VS_2X,
        "goodput collapsed under 10x overload: {:.0}/s vs {:.0}/s at 2x",
        row10x.goodput(),
        row2x.goodput()
    );
    let (goodput_2x, goodput_10x) = (row2x.goodput(), row10x.goodput());
    rows.push(row2x);
    rows.push(row10x);

    // The quick suite, so its reference numbers are committed for the
    // `--quick` CI gate.
    let (q_light, q_knee, q_over) = quick_suite(seed);

    // The federated plane: K=1/2/4 x steady/flash/failover, with the
    // scaling and per-join CPU acceptance gates.
    println!("federation sweep:");
    let (fed_rows, fed_k1_knee, fed_k4_knee) = federation_sweep(seed);
    assert!(
        fed_k4_knee >= fed_k1_knee * FED_K4_SCALING_FLOOR,
        "federation scaling collapsed: K=4 aggregate {fed_k4_knee:.0} joins-ok/s < \
         {FED_K4_SCALING_FLOOR}x K=1 {fed_k1_knee:.0}"
    );
    let (cpu_fast_ns, cpu_legacy_ns, cpu_speedup) = gate_per_join_cpu(5_000);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"service\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"nominal_capacity_per_sec\": {nominal:.0},\n"));
    out.push_str(&format!(
        "  \"knee_joins_ok_per_sec\": {knee_joins_ok:.1},\n"
    ));
    out.push_str(&format!(
        "  \"knee_wall_msgs_per_sec\": {knee_wall_msgs_per_sec:.0},\n"
    ));
    out.push_str(&format!("  \"goodput_2x_per_sec\": {goodput_2x:.1},\n"));
    out.push_str(&format!("  \"goodput_10x_per_sec\": {goodput_10x:.1},\n"));
    out.push_str(&format!("  \"slo_jtfs_p999_ms\": {SLO_JTFS_P999_MS:.0},\n"));
    out.push_str(&format!(
        "  \"quick_knee_joins_ok_per_sec\": {:.1},\n",
        q_knee.joins_ok_per_sec()
    ));
    out.push_str(&format!(
        "  \"quick_light_jtfs_p999_ms\": {:.3},\n",
        ms(q_light.report.jtfs.quantile(0.999))
    ));
    out.push_str(&format!(
        "  \"quick_goodput_2x_per_sec\": {:.1},\n",
        q_over.goodput()
    ));
    out.push_str(&format!(
        "  \"federation_k1_knee_joins_ok_per_sec\": {fed_k1_knee:.1},\n"
    ));
    out.push_str(&format!(
        "  \"federation_k4_knee_joins_ok_per_sec\": {fed_k4_knee:.1},\n"
    ));
    out.push_str(&format!(
        "  \"federation_scaling_x\": {:.2},\n",
        fed_k4_knee / fed_k1_knee.max(1e-9)
    ));
    out.push_str(&format!("  \"per_join_cpu_fast_ns\": {cpu_fast_ns:.0},\n"));
    out.push_str(&format!(
        "  \"per_join_cpu_legacy_ns\": {cpu_legacy_ns:.0},\n"
    ));
    out.push_str(&format!(
        "  \"per_join_cpu_speedup_x\": {cpu_speedup:.2},\n"
    ));
    out.push_str("  \"scenarios\": [\n");
    let all = rows
        .iter()
        .map(|r| format!("    {}", r.json))
        .chain(
            [q_light, q_knee, q_over]
                .iter()
                .map(|r| format!("    {}", r.json)),
        )
        .collect::<Vec<_>>()
        .join(",\n");
    out.push_str(&all);
    out.push_str("\n  ],\n");
    out.push_str("  \"federation\": [\n");
    let fed_all = fed_rows
        .iter()
        .map(|r| format!("    {}", r.json))
        .collect::<Vec<_>>()
        .join(",\n");
    out.push_str(&fed_all);
    out.push_str("\n  ]\n}\n");

    std::fs::write("BENCH_service.json", &out).expect("write BENCH_service.json");
    println!(
        "service: knee {knee_joins_ok:.0} joins-ok/s (nominal {nominal:.0}), \
         {knee_wall_msgs_per_sec:.0} wall msgs/s at the knee, goodput {goodput_2x:.0}/s @2x \
         -> {goodput_10x:.0}/s @10x; federation K=1 {fed_k1_knee:.0} -> K=4 {fed_k4_knee:.0} \
         agg joins-ok/s, per-join CPU {cpu_fast_ns:.0} ns ({cpu_speedup:.2}x vs legacy); \
         wrote BENCH_service.json"
    );
}

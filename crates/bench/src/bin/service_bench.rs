//! Emits `BENCH_service.json`: the open-loop serving numbers for the
//! signaling/tracker plane (`pdn_provider::service`) — knee throughput,
//! p50/p99/p999 join-to-first-segment and signaling RTT per scenario, and
//! goodput under 2x / 10x overload (which must plateau via explicit
//! denial, not collapse), with bounded inbox memory and tail-drop
//! accounting for the bounded capture ring.
//!
//! ```text
//! cargo run --release -p pdn-bench --bin service_bench [-- --quick] [--seed N]
//! ```
//!
//! Every scenario runs twice and the deterministic result row must come
//! back byte-identical — wall-clock throughput is reported separately and
//! never gated on.
//!
//! `--quick` runs a small three-point suite and fails if the p999
//! join-to-first-segment breaches the SLO budget, the knee throughput
//! regressed more than 10% against the committed `BENCH_service.json`,
//! or goodput at 2x overload fell off a plateau. No JSON is written in
//! quick mode — this is the `scripts/check.sh` guard.
//!
//! `--seed N` reruns everything under a different world seed (default 1;
//! the committed JSON is seed 1).

use std::time::{Duration, Instant};

use pdn_provider::service::{run_service, InboxConfig, ServiceConfig, ServiceReport};
use pdn_simnet::{RatePlan, SimTime};

/// p999 join-to-first-segment budget for a healthy (under-knee) load,
/// global audience against a single-region tracker.
const SLO_JTFS_P999_MS: f64 = 1_000.0;

/// Goodput at 10x overload must hold at least this share of goodput at
/// 2x — the plateau criterion (shedding, not collapsing).
const PLATEAU_10X_VS_2X: f64 = 0.7;

/// Quick-mode plateau: goodput at 2x overload vs the knee point.
const PLATEAU_2X_VS_KNEE: f64 = 0.6;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// One scenario's deterministic result row (everything but wall time).
struct Row {
    name: String,
    offered_per_sec: f64,
    json: String,
    report: ServiceReport,
    run_for: Duration,
}

impl Row {
    fn goodput(&self) -> f64 {
        self.report.goodput_per_sec(self.run_for)
    }

    fn joins_ok_per_sec(&self) -> f64 {
        self.report.joins_ok as f64 / self.run_for.as_secs_f64()
    }
}

/// Renders the deterministic JSON row for a report. Byte-identity of this
/// string across reruns is the determinism gate.
fn render_row(name: &str, offered: f64, cfg: &ServiceConfig, r: &ServiceReport) -> String {
    format!(
        concat!(
            "{{\"name\": \"{}\", \"offered_per_sec\": {:.0}, \"arrivals\": {}, ",
            "\"joins_ok\": {}, \"joins_denied\": {}, \"turned_away\": {}, ",
            "\"first_segments\": {}, \"leaves\": {}, \"goodput_per_sec\": {:.1}, ",
            "\"jtfs_p50_ms\": {:.3}, \"jtfs_p99_ms\": {:.3}, \"jtfs_p999_ms\": {:.3}, ",
            "\"rtt_p50_ms\": {:.3}, \"rtt_p99_ms\": {:.3}, \"rtt_p999_ms\": {:.3}, ",
            "\"shed_greeter\": {}, \"shed_gossip\": {}, \"shed_integrity\": {}, ",
            "\"denied_at_inbox\": {}, \"backpressured\": {}, ",
            "\"inbox_peak_depth\": {}, \"inbox_peak_bytes\": {}, ",
            "\"batch_hits\": {}, \"served_frames\": {}, \"peak_clients\": {}, ",
            "\"capture_dropped\": {}, \"capture_filtered\": {}, ",
            "\"cdn_requests\": {}, \"cdn_egress_bytes\": {}}}"
        ),
        name,
        offered,
        r.arrivals,
        r.joins_ok,
        r.joins_denied,
        r.turned_away,
        r.first_segments,
        r.leaves,
        r.goodput_per_sec(cfg.run_for),
        ms(r.jtfs.quantile(0.50)),
        ms(r.jtfs.quantile(0.99)),
        ms(r.jtfs.quantile(0.999)),
        ms(r.rtt.quantile(0.50)),
        ms(r.rtt.quantile(0.99)),
        ms(r.rtt.quantile(0.999)),
        r.shed.shed_greeter,
        r.shed.shed_gossip,
        r.shed.shed_integrity,
        r.shed.denied_joins,
        r.shed.backpressured,
        r.shed.peak_depth,
        r.shed.peak_bytes,
        r.batch_hits,
        r.served_frames,
        r.peak_clients,
        r.capture_dropped,
        r.capture_filtered,
        r.cdn_requests,
        r.cdn_egress_bytes,
    )
}

/// Runs one scenario twice, asserts the deterministic row is
/// byte-identical, and returns the row plus the first run's wall seconds.
fn run_scenario(name: &str, offered: f64, cfg: &ServiceConfig) -> (Row, f64) {
    let t = Instant::now();
    let report = run_service(cfg);
    let wall = t.elapsed().as_secs_f64();
    let json = render_row(name, offered, cfg, &report);
    let rerun = render_row(name, offered, cfg, &run_service(cfg));
    assert!(
        json == rerun,
        "scenario {name} is nondeterministic:\n  {json}\n  {rerun}"
    );
    // Bounded memory: the pool cap held and the inboxes never outgrew
    // their configured queue caps.
    assert!(report.peak_clients <= cfg.max_clients as u64);
    let cap_total = (cfg.inbox.join_cap
        + cfg.inbox.integrity_cap
        + cfg.inbox.gossip_cap
        + cfg.inbox.greeter_cap) as u64;
    assert!(
        report.shed.peak_depth <= cap_total,
        "{name}: inbox depth {} exceeded the cap total {cap_total}",
        report.shed.peak_depth
    );
    (
        Row {
            name: name.to_string(),
            offered_per_sec: offered,
            json,
            report,
            run_for: cfg.run_for,
        },
        wall,
    )
}

/// The base serving config every scenario derives from.
fn base(seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(RatePlan::Steady { per_sec: 0.0 });
    cfg.seed = seed;
    cfg.run_for = Duration::from_secs(10);
    cfg.tick = Duration::from_millis(5);
    cfg.tick_budget = 60;
    cfg.inbox = InboxConfig::default();
    cfg.mean_session = Duration::from_secs(8);
    cfg.stats_every = Duration::from_secs(4);
    cfg.max_clients = 60_000;
    cfg
}

/// The small suite `--quick` gates on; full mode runs it too so its
/// numbers land in the committed JSON for future gating.
fn quick_suite(seed: u64) -> (Row, Row, Row) {
    let mut cfg = base(seed);
    cfg.run_for = Duration::from_secs(4);
    cfg.mean_session = Duration::from_secs(3);
    cfg.stats_every = Duration::from_secs(2);
    let nominal = cfg.nominal_capacity_per_sec();

    let mut light = cfg.clone();
    light.plan = RatePlan::Steady {
        per_sec: nominal * 0.4,
    };
    let (light_row, _) = run_scenario("quick_light", nominal * 0.4, &light);

    let mut knee = cfg.clone();
    knee.plan = RatePlan::Steady { per_sec: nominal };
    let (knee_row, _) = run_scenario("quick_knee", nominal, &knee);

    let mut over = cfg;
    over.plan = RatePlan::Steady {
        per_sec: nominal * 2.0,
    };
    let (over_row, _) = run_scenario("quick_2x", nominal * 2.0, &over);

    (light_row, knee_row, over_row)
}

/// Extracts the number following `key` in a flat JSON text.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn committed_quick_knee() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_service.json").ok()?;
    json_f64(&text, "\"quick_knee_joins_ok_per_sec\": ")
}

/// Value of a `--flag value` or `--flag=value` argument.
fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name).and_then(|v| v.strip_prefix('=')) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes a u64"))
        .unwrap_or(1);

    if quick {
        let (light, knee, over) = quick_suite(seed);
        let p999 = ms(light.report.jtfs.quantile(0.999));
        println!(
            "service quick: knee {:.0} joins-ok/s, light p999 JTFS {:.1} ms, 2x goodput {:.0}/s",
            knee.joins_ok_per_sec(),
            p999,
            over.goodput()
        );
        assert!(
            p999 <= SLO_JTFS_P999_MS,
            "SLO breach: p999 join-to-first-segment {p999:.1} ms > budget {SLO_JTFS_P999_MS} ms"
        );
        assert!(
            over.goodput() >= knee.goodput() * PLATEAU_2X_VS_KNEE,
            "overload collapse: 2x goodput {:.0}/s fell below {:.0}% of knee {:.0}/s",
            over.goodput(),
            PLATEAU_2X_VS_KNEE * 100.0,
            knee.goodput()
        );
        match committed_quick_knee() {
            Some(committed) => {
                let now = knee.joins_ok_per_sec();
                assert!(
                    now >= committed * 0.9,
                    "knee throughput regressed: {now:.0} joins-ok/s vs committed {committed:.0} \
                     (>10%)"
                );
                println!("  within 10% of committed {committed:.0} joins-ok/s");
            }
            None => println!("  no committed BENCH_service.json; skipping regression gate"),
        }
        return;
    }

    let cfg = base(seed);
    let nominal = cfg.nominal_capacity_per_sec();
    let mut rows: Vec<Row> = Vec::new();
    let mut knee_wall_msgs_per_sec = 0.0;

    // Knee sweep: steady loads bracketing the analytic capacity. Leaves
    // share the join-critical budget, so the measured knee sits well
    // under `nominal` — that is the point of measuring it.
    for mult in [0.4, 0.7, 1.0, 1.3] {
        let mut c = cfg.clone();
        c.plan = RatePlan::Steady {
            per_sec: nominal * mult,
        };
        let name = format!("steady_{:.0}", nominal * mult);
        let (row, wall) = run_scenario(&name, nominal * mult, &c);
        if mult == 1.0 {
            knee_wall_msgs_per_sec = row.report.served_frames as f64 / wall.max(1e-9);
        }
        println!(
            "  {:>16}: {:>6.0} offered/s -> {:>6.0} good/s, p999 JTFS {:>8.1} ms, denied {}",
            row.name,
            row.offered_per_sec,
            row.goodput(),
            ms(row.report.jtfs.quantile(0.999)),
            row.report.joins_denied
        );
        rows.push(row);
    }
    let knee_joins_ok = rows
        .iter()
        .map(Row::joins_ok_per_sec)
        .fold(0.0f64, f64::max);

    // Flash crowd: breaking news at t=4s, 6x for 3s, under a greeter
    // flood the whole time.
    let mut flash = cfg.clone();
    flash.plan = RatePlan::FlashCrowd {
        base_per_sec: nominal * 0.5,
        mult: 6.0,
        at: SimTime::from_secs(4),
        dur: Duration::from_secs(3),
    };
    flash.greeter_per_sec = 5_000.0;
    let (row, _) = run_scenario("flash_crowd_6x", nominal * 3.0, &flash);
    println!(
        "  {:>16}: spike p999 JTFS {:>8.1} ms, denied {}, junk refused {}",
        row.name,
        ms(row.report.jtfs.quantile(0.999)),
        row.report.joins_denied,
        row.report.shed.shed_greeter + row.report.shed.backpressured
    );
    rows.push(row);

    // Regional failover: a sibling tracker dies at t=5s and its audience
    // lands here for good.
    let mut failover = cfg.clone();
    failover.plan = RatePlan::Failover {
        base_per_sec: nominal * 0.6,
        mult: 2.5,
        at: SimTime::from_secs(5),
    };
    let (row, _) = run_scenario("failover_2p5x", nominal * 1.5, &failover);
    println!(
        "  {:>16}: post-failover goodput {:>6.0}/s, p999 JTFS {:>8.1} ms",
        row.name,
        row.goodput(),
        ms(row.report.jtfs.quantile(0.999))
    );
    rows.push(row);

    // Sustained overload: goodput must plateau via explicit denial.
    let mut over2 = cfg.clone();
    over2.plan = RatePlan::Steady {
        per_sec: nominal * 2.0,
    };
    let (row2x, _) = run_scenario("overload_2x", nominal * 2.0, &over2);
    let mut over10 = cfg.clone();
    over10.plan = RatePlan::Steady {
        per_sec: nominal * 10.0,
    };
    let (row10x, _) = run_scenario("overload_10x", nominal * 10.0, &over10);
    for r in [&row2x, &row10x] {
        println!(
            "  {:>16}: {:>6.0} offered/s -> {:>6.0} good/s, denied {}, peak inbox {} frames / {} B",
            r.name,
            r.offered_per_sec,
            r.goodput(),
            r.report.joins_denied,
            r.report.shed.peak_depth,
            r.report.shed.peak_bytes
        );
    }
    assert!(
        row10x.goodput() >= row2x.goodput() * PLATEAU_10X_VS_2X,
        "goodput collapsed under 10x overload: {:.0}/s vs {:.0}/s at 2x",
        row10x.goodput(),
        row2x.goodput()
    );
    let (goodput_2x, goodput_10x) = (row2x.goodput(), row10x.goodput());
    rows.push(row2x);
    rows.push(row10x);

    // The quick suite, so its reference numbers are committed for the
    // `--quick` CI gate.
    let (q_light, q_knee, q_over) = quick_suite(seed);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"service\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"nominal_capacity_per_sec\": {nominal:.0},\n"));
    out.push_str(&format!(
        "  \"knee_joins_ok_per_sec\": {knee_joins_ok:.1},\n"
    ));
    out.push_str(&format!(
        "  \"knee_wall_msgs_per_sec\": {knee_wall_msgs_per_sec:.0},\n"
    ));
    out.push_str(&format!("  \"goodput_2x_per_sec\": {goodput_2x:.1},\n"));
    out.push_str(&format!("  \"goodput_10x_per_sec\": {goodput_10x:.1},\n"));
    out.push_str(&format!("  \"slo_jtfs_p999_ms\": {SLO_JTFS_P999_MS:.0},\n"));
    out.push_str(&format!(
        "  \"quick_knee_joins_ok_per_sec\": {:.1},\n",
        q_knee.joins_ok_per_sec()
    ));
    out.push_str(&format!(
        "  \"quick_light_jtfs_p999_ms\": {:.3},\n",
        ms(q_light.report.jtfs.quantile(0.999))
    ));
    out.push_str(&format!(
        "  \"quick_goodput_2x_per_sec\": {:.1},\n",
        q_over.goodput()
    ));
    out.push_str("  \"scenarios\": [\n");
    let all = rows
        .iter()
        .map(|r| format!("    {}", r.json))
        .chain(
            [q_light, q_knee, q_over]
                .iter()
                .map(|r| format!("    {}", r.json)),
        )
        .collect::<Vec<_>>()
        .join(",\n");
    out.push_str(&all);
    out.push_str("\n  ]\n}\n");

    std::fs::write("BENCH_service.json", &out).expect("write BENCH_service.json");
    println!(
        "service: knee {knee_joins_ok:.0} joins-ok/s (nominal {nominal:.0}), \
         {knee_wall_msgs_per_sec:.0} wall msgs/s at the knee, goodput {goodput_2x:.0}/s @2x \
         -> {goodput_10x:.0}/s @10x; wrote BENCH_service.json"
    );
}

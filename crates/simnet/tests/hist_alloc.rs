//! The "allocation-free after warmup" contract of `LatencyHistogram`,
//! measured with a counting global allocator rather than asserted by
//! inspection (same stance as `crypto_bench` / `wire_bench`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn record_merge_and_quantile_never_allocate() {
    use pdn_simnet::LatencyHistogram;

    // Construction is the one allocating step.
    let mut a = LatencyHistogram::new();
    let mut b = LatencyHistogram::new();

    let recorded = allocs(|| {
        let mut v = 3u64;
        for i in 0..100_000u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(i);
            a.record(v % 10_000_000_000);
            b.record_n(v % 1_000, 3);
        }
    });
    assert_eq!(recorded, 0, "record allocated {recorded} times");

    let queried = allocs(|| {
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            std::hint::black_box(a.quantile(q));
            std::hint::black_box(b.quantile(q));
        }
        std::hint::black_box(a.mean());
    });
    assert_eq!(queried, 0, "quantile/mean allocated {queried} times");

    let merged = allocs(|| {
        a.merge(&b);
        a.clear();
    });
    assert_eq!(merged, 0, "merge/clear allocated {merged} times");
}

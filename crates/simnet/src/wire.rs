//! Variable-length integer primitives shared by the wire codecs.
//!
//! LEB128-style base-128 varints: each byte carries seven payload bits
//! (least-significant group first) and a continuation flag in the top bit.
//! Small values — sequence numbers, peer ids, lengths, intern-table slots —
//! encode in one or two bytes instead of a fixed eight, which is where most
//! of the binary codec's size win over the old fixed-width frames comes
//! from. Decoding rejects truncated input and over-long encodings (more
//! than [`MAX_UVARINT_LEN`] bytes or bits beyond the 64th), so a parser
//! built on [`get_uvarint`] is total over arbitrary bytes.
//!
//! Used by the provider's binary signaling/P2P codec and by the WebRTC
//! data-channel chunk header; it lives here because `pdn-simnet` is below
//! both of those crates in the dependency graph.

use bytes::BufMut;

/// Maximum encoded size of a `u64` varint (ten 7-bit groups cover 64 bits).
pub const MAX_UVARINT_LEN: usize = 10;

/// Appends `v` as a base-128 varint, least-significant group first.
pub fn put_uvarint<B: BufMut>(buf: &mut B, mut v: u64) {
    loop {
        let group = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(group);
            return;
        }
        buf.put_u8(group | 0x80);
    }
}

/// Reads a varint at `data[*off..]`, advancing `off` past it.
///
/// Returns `None` on truncation, on an encoding longer than
/// [`MAX_UVARINT_LEN`] bytes, or when a continuation sets bits above the
/// 64th (`off` is left wherever parsing stopped; callers treat `None` as a
/// malformed frame and discard it whole).
pub fn get_uvarint(data: &[u8], off: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let b = *data.get(*off)?;
        *off += 1;
        if shift == 63 && b > 1 {
            return None; // bits beyond u64::MAX
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encoded size of `v` in bytes (1..=[`MAX_UVARINT_LEN`]).
pub fn uvarint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (300, &[0xac, 0x02]),
            (
                u64::MAX,
                &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01],
            ),
        ];
        for (v, expect) in cases {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, *v);
            assert_eq!(&buf[..], *expect, "encoding of {v}");
            assert_eq!(buf.len(), uvarint_len(*v), "length of {v}");
            let mut off = 0;
            assert_eq!(get_uvarint(&buf, &mut off), Some(*v));
            assert_eq!(off, buf.len());
        }
    }

    #[test]
    fn truncated_and_overlong_rejected() {
        let mut off = 0;
        assert_eq!(
            get_uvarint(&[0x80], &mut off),
            None,
            "dangling continuation"
        );
        // Eleven continuation bytes: longer than any valid u64 encoding.
        let overlong = [0x80u8; 11];
        let mut off = 0;
        assert_eq!(get_uvarint(&overlong, &mut off), None);
        // 10-byte encoding whose last group sets bits above the 64th.
        let too_big = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut off = 0;
        assert_eq!(get_uvarint(&too_big, &mut off), None);
    }

    proptest! {
        #[test]
        fn roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            prop_assert_eq!(buf.len(), uvarint_len(v));
            prop_assert!(buf.len() <= MAX_UVARINT_LEN);
            let mut off = 0;
            prop_assert_eq!(get_uvarint(&buf, &mut off), Some(v));
            prop_assert_eq!(off, buf.len());
        }

        #[test]
        fn decode_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..24)) {
            let mut off = 0;
            let _ = get_uvarint(&garbage, &mut off);
            prop_assert!(off <= garbage.len());
        }
    }
}

//! # pdn-simnet
//!
//! A deterministic discrete-event network simulator standing in for the
//! Internet + Docker substrate of the paper's PDN analyzer (§IV-A).
//!
//! The simulator transports opaque datagrams between simulated hosts with
//! realistic latency, bandwidth contention, packet loss, and NAT behaviour.
//! It exposes the three interposition points the PDN analyzer is built on:
//!
//! - **frame capture** like `tcpdump` on `docker0` ([`Network::capture`]);
//! - **MITM taps** like the analyzer's proxy server ([`Network::install_tap`]);
//! - **per-node resource stats** like the Docker Engine API
//!   ([`Network::resources`], [`ResourceModel`]).
//!
//! Protocol logic (STUN/ICE/DTLS, HLS, PDN signaling) lives in the crates
//! layered on top: `pdn-webrtc`, `pdn-media`, `pdn-provider`.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use pdn_simnet::{Addr, GeoInfo, LinkSpec, Network, Event, Transport};
//!
//! let mut net = Network::new(42);
//! let a = net.add_public_host(GeoInfo::new("US", 1, "AS1"), LinkSpec::residential());
//! let b = net.add_public_host(GeoInfo::new("US", 1, "AS1"), LinkSpec::residential());
//!
//! let dst = Addr::from_ip(net.ip(b), 8080);
//! net.send(a, 5000, dst, Transport::Udp, Bytes::from_static(b"ping"));
//!
//! if let Some((at, Event::Packet { to, dgram })) = net.step() {
//!     assert_eq!(to, b);
//!     assert_eq!(&dgram.payload[..], b"ping");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod arrival;
pub mod fxhash;
mod geo;
mod hist;
mod nat;
mod net;
pub mod profile;
mod queue;
mod resources;
mod rng;
mod route;
pub mod shard;
mod time;
pub mod wire;

pub use addr::{Addr, IpClass};
pub use arrival::{PoissonArrivals, RatePlan};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, Interner};
pub use geo::{continent_of, Continent, CountryCode, CountryMix, GeoInfo, GeoIpService};
pub use hist::{LatencyHistogram, RELATIVE_ERROR, SUB_BUCKETS};
pub use nat::{Nat, NatKind};
pub use net::{
    CaptureFilter, CapturedFrame, Datagram, DropReason, Event, LinkSpec, NatId, Network, NodeId,
    SendOutcome, TapDirection, TapFn, TapVerdict, TimerId, Transport, DEFAULT_CAPTURE_LIMIT,
};
pub use queue::{CalendarQueue, EventId, EventQueue, EventQueueStats, HeapMapQueue};
pub use resources::{series_to_csv, ResourceModel, ResourceSample, ResourceSummary};
pub use rng::SimRng;
pub use route::RouteTable;
pub use time::SimTime;
#[cfg(test)]
mod prop_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Delivery time is always strictly after send time, regardless of
        /// payload size or link speeds.
        #[test]
        fn delivery_never_in_the_past(
            seed in any::<u64>(),
            len in 0usize..100_000,
            up in 1_000_000u64..1_000_000_000,
            down in 1_000_000u64..1_000_000_000,
        ) {
            let mut net = Network::new(seed);
            let link = LinkSpec { up_bps: up, down_bps: down, loss: 0.0, ..LinkSpec::residential() };
            let a = net.add_public_host(GeoInfo::new("US", 1, "AS1"), link);
            let b = net.add_public_host(GeoInfo::new("US", 1, "AS1"), link);
            let dst = Addr::from_ip(net.ip(b), 80);
            let before = net.now();
            if let SendOutcome::Sent { deliver_at } =
                net.send(a, 1, dst, Transport::Tcp, Bytes::from(vec![0u8; len]))
            {
                prop_assert!(deliver_at > before);
            } else {
                prop_assert!(false, "tcp send with zero loss must be scheduled");
            }
        }

        /// Events always pop in non-decreasing time order.
        #[test]
        fn event_order_monotone(seed in any::<u64>(), n in 1usize..50) {
            let mut net = Network::new(seed);
            let a = net.add_public_host(GeoInfo::new("US", 1, "AS1"), LinkSpec::residential());
            let b = net.add_public_host(GeoInfo::new("DE", 1, "AS2"), LinkSpec::residential());
            let dst = Addr::from_ip(net.ip(b), 80);
            for i in 0..n {
                net.send(a, 1, dst, Transport::Tcp, Bytes::from(vec![0u8; i * 100]));
                net.set_timer(a, std::time::Duration::from_millis((n - i) as u64 * 7), i as u64);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = net.step() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        /// NAT egress/ingress consistency: a reply to any observed mapping
        /// from the exact remote endpoint always reaches the internal host.
        #[test]
        fn nat_reply_path_always_works(
            kind_idx in 0usize..4,
            flows in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..40),
        ) {
            let kind = [
                NatKind::FullCone,
                NatKind::RestrictedCone,
                NatKind::PortRestrictedCone,
                NatKind::Symmetric,
            ][kind_idx];
            let mut nat = Nat::new(kind, std::net::Ipv4Addr::new(5, 5, 5, 5));
            for (host, local_port, remote_port) in flows {
                let internal = Addr::new(192, 168, 1, host.max(2), local_port.max(1));
                let remote = Addr::new(9, 9, 9, host ^ 0x55, remote_port.max(1));
                let mapped = nat.egress(internal, remote);
                prop_assert_eq!(nat.ingress(mapped.port, remote), Some(internal));
            }
        }

        /// NAT'd hosts never expose their private IP on the wire.
        #[test]
        fn natted_wire_source_is_public(seed in any::<u64>()) {
            let mut net = Network::new(seed);
            let geo = GeoInfo::new("CN", 1, "AS4134");
            let server = net.add_public_host(geo.clone(), LinkSpec::datacenter());
            let nat = net.add_nat(NatKind::FullCone, &geo);
            let client = net.add_host_behind(nat, geo, LinkSpec::residential());
            net.set_capture(true);
            let dst = Addr::from_ip(net.ip(server), 443);
            net.send(client, 999, dst, Transport::Tcp, Bytes::from_static(b"x"));
            for f in net.capture() {
                prop_assert_eq!(IpClass::of(f.src.ip), IpClass::Public);
            }
        }
    }
}

//! Sorted-vector route lookup for the per-datagram hot path.
//!
//! Wire routing is insert-mostly (hosts and NATs are added during topology
//! construction) and lookup-heavy (every datagram resolves its destination
//! IP). A sorted `Vec` with binary search beats a `HashMap` here: no
//! per-lookup hashing, four-byte keys, and a cache-friendly contiguous
//! layout — the whole table for a thousand-node world fits in a few cache
//! lines' worth of pages. `microbench.rs` compares the two.

use std::net::Ipv4Addr;

/// A map from IPv4 address to route target, backed by a sorted vector.
#[derive(Debug, Clone, Default)]
pub struct RouteTable<V> {
    entries: Vec<(Ipv4Addr, V)>,
}

impl<V> RouteTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        RouteTable {
            entries: Vec::new(),
        }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a route, returning the previous target for `ip` if any.
    pub fn insert(&mut self, ip: Ipv4Addr, target: V) -> Option<V> {
        match self.entries.binary_search_by_key(&ip, |(k, _)| *k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, target)),
            Err(i) => {
                self.entries.insert(i, (ip, target));
                None
            }
        }
    }

    /// Looks up the route target for `ip`.
    #[inline]
    pub fn get(&self, ip: Ipv4Addr) -> Option<&V> {
        self.entries
            .binary_search_by_key(&ip, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Iterates routes in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut t = RouteTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(Ipv4Addr::new(10, 0, 0, 2), 7u32), None);
        assert_eq!(t.insert(Ipv4Addr::new(10, 0, 0, 1), 5), None);
        assert_eq!(t.insert(Ipv4Addr::new(203, 0, 113, 9), 9), None);
        assert_eq!(t.get(Ipv4Addr::new(10, 0, 0, 1)), Some(&5));
        assert_eq!(t.get(Ipv4Addr::new(10, 0, 0, 2)), Some(&7));
        assert_eq!(t.get(Ipv4Addr::new(10, 0, 0, 3)), None);
        assert_eq!(t.insert(Ipv4Addr::new(10, 0, 0, 1), 6), Some(5));
        assert_eq!(t.get(Ipv4Addr::new(10, 0, 0, 1)), Some(&6));
        assert_eq!(t.len(), 3);
        // Iteration is address-ordered.
        let ips: Vec<Ipv4Addr> = t.iter().map(|(ip, _)| ip).collect();
        let mut sorted = ips.clone();
        sorted.sort();
        assert_eq!(ips, sorted);
    }

    #[test]
    fn agrees_with_hashmap_reference() {
        use crate::rng::SimRng;
        use std::collections::HashMap;
        let mut rng = SimRng::seed(3);
        let mut table = RouteTable::new();
        let mut reference = HashMap::new();
        for i in 0..2_000u32 {
            let ip = Ipv4Addr::from(rng.next_u64() as u32 & 0xffff);
            table.insert(ip, i);
            reference.insert(ip, i);
        }
        assert_eq!(table.len(), reference.len());
        for probe in 0..0x10000u32 {
            let ip = Ipv4Addr::from(probe);
            assert_eq!(table.get(ip), reference.get(&ip));
        }
    }
}

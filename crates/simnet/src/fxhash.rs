//! Deterministic non-DoS hashing and string interning for hot-path state.
//!
//! The std `HashMap` defaults to SipHash-1-3 behind a per-process random
//! `RandomState`. That buys HashDoS resistance the simulator does not need
//! (all keys are simulation-internal) at the cost of ~10x the hashing work
//! and — more importantly for this codebase — *nondeterministic iteration
//! order*, which forced "collect + sort" patterns all over the swarm-state
//! layer. [`FxHasher`] is a from-scratch implementation of the multiply-xor
//! scheme used by the rustc compiler (firefox's "Fx" hash): one wrapping
//! multiply per word, fully deterministic across processes and platforms.
//!
//! [`Interner`] builds on it to map strings (video ids, customer keys,
//! country codes) to dense `u32` ids so downstream state can key slabs and
//! sorted vecs by integer instead of re-hashing strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (64-bit golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (multiply-xor scheme).
///
/// Not DoS-resistant — only for keys the simulation itself generates.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; `Default` so map literals stay terse.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// String interner: maps strings to dense `u32` ids, first-seen order.
///
/// Ids are assigned sequentially from 0, so two interners fed the same
/// strings in the same order assign identical ids — the property the
/// deterministic world executor relies on.
#[derive(Default, Clone, Debug)]
pub struct Interner {
    by_str: FxHashMap<String, u32>,
    by_id: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense id (assigning the next id if new).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = self.by_id.len() as u32;
        self.by_id.push(s.to_owned());
        self.by_str.insert(s.to_owned(), id);
        id
    }

    /// Looks up an already-interned string without assigning a new id.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// Resolves an id back to its string. Panics on an id this interner
    /// never produced.
    pub fn resolve(&self, id: u32) -> &str {
        &self.by_id[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hash_is_deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one("live-channel");
        let b = FxBuildHasher::default().hash_one("live-channel");
        assert_eq!(a, b);
    }

    #[test]
    fn hash_distinguishes_trailing_bytes() {
        let h = FxBuildHasher::default();
        assert_ne!(h.hash_one([0x61u8, 0x62]), h.hash_one([0x61u8, 0x62, 0x00]));
        assert_ne!(h.hash_one(1u64), h.hash_one(2u64));
    }

    #[test]
    fn interner_assigns_dense_first_seen_ids() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.resolve(1), "b");
        assert_eq!(i.get("c"), None);
        assert_eq!(i.len(), 2);
    }
}

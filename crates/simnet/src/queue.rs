//! The simulator's event scheduler: a slab-backed calendar queue.
//!
//! [`CalendarQueue`] replaces the original two-structure scheduler (a
//! `BinaryHeap<Reverse<(time, seq)>>` ordering index plus a side
//! `HashMap<seq, Event>` payload store) with a single indexed priority
//! queue that stores every payload inline:
//!
//! - **Timer-wheel front end.** Near-term events — the overwhelming
//!   majority in a streaming simulation, where deliveries land a few
//!   milliseconds out — go into one of [`WHEEL_BUCKETS`] calendar buckets
//!   of ~0.5 ms width. A push is a `Vec` push; a pop sorts the current
//!   bucket once and then drains it from the back.
//! - **Heap overflow tier.** Events beyond the wheel horizon (~1 s) wait
//!   in a small binary heap and migrate into the wheel as the cursor
//!   advances. Long timers pay two cheap moves instead of O(log n) sift
//!   costs against the whole near-term population.
//! - **Slab slot reuse.** Payloads live in a slab indexed by the queue
//!   keys; freed slots are recycled through a free list, so steady-state
//!   churn allocates nothing and — unlike the old `pending` map, which
//!   kept tombstones until popped — cancelled events release their slot
//!   (and the payload's heap memory) eagerly.
//! - **Zero per-event hashing.** No `HashMap` anywhere: every lookup is an
//!   array index.
//!
//! Pop order is strictly `(time, sequence)`. With [`CalendarQueue::push`]
//! the sequence is an internal schedule counter — identical to the old
//! scheduler, which the differential tests against [`HeapMapQueue`] (the
//! old design, kept as the reference implementation and the `sim_bench`
//! baseline) pin down. [`CalendarQueue::push_keyed`] instead takes the
//! tie-break key from the caller, which is what the sharded runner needs:
//! a key derived from event *content* (origin node, per-origin counter)
//! pops in the same order no matter which shard pushed it first, making
//! merge results independent of shard count. The [`EventQueue`] alias
//! (payload = [`Event`]) is the `Network` scheduler.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::net::Event;
use crate::time::SimTime;

/// Log2 of the bucket width in nanoseconds (2^19 ns ≈ 0.52 ms).
const BUCKET_SHIFT: u32 = 19;

/// Number of calendar buckets (wheel horizon ≈ 1.07 s).
const WHEEL_BUCKETS: usize = 2048;

/// Handle to a scheduled event, for cancellation.
///
/// Generation-tagged: a handle becomes stale once the event fires or is
/// cancelled, and [`CalendarQueue::cancel`] on a stale handle is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Ordering key of one queued event. Payloads stay in the slab; only this
/// 20-byte key moves through the wheel and overflow tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    at: u64,
    seq: u64,
    slot: u32,
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Where a live event's key currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In the wheel bucket with this absolute index.
    Wheel(u64),
    /// In the overflow heap.
    Overflow,
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    seq: u64,
    loc: Loc,
    ev: Option<T>,
}

/// Occupancy counters of the queue, exposed for capacity assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventQueueStats {
    /// Live (scheduled, uncancelled) events.
    pub live: usize,
    /// Slab slots ever allocated — bounds the queue's memory footprint.
    /// Stays at the high-water mark of concurrent events, not the total
    /// ever scheduled.
    pub slots: usize,
    /// Keys currently in the wheel tier.
    pub wheel: usize,
    /// Keys currently in the overflow tier.
    pub overflow: usize,
}

/// The indexed calendar queue, generic over its payload. See the module
/// docs for the design.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    wheel: Vec<Vec<Key>>,
    wheel_len: usize,
    /// Absolute bucket index the wheel is positioned at; only advances.
    cursor: u64,
    /// Whether the cursor bucket is sorted descending (drained from back).
    cursor_sorted: bool,
    overflow: BinaryHeap<Reverse<Key>>,
    len: usize,
    next_seq: u64,
}

/// The `Network` scheduler: a [`CalendarQueue`] carrying [`Event`]s.
pub type EventQueue = CalendarQueue<Event>;

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            slots: Vec::new(),
            free: Vec::new(),
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            cursor: 0,
            cursor_sorted: false,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupancy counters.
    pub fn stats(&self) -> EventQueueStats {
        EventQueueStats {
            live: self.len,
            slots: self.slots.len(),
            wheel: self.wheel_len,
            overflow: self.overflow.len(),
        }
    }

    /// Approximate heap footprint of the queue's own structures in bytes
    /// (slab, wheel buckets, overflow heap; excludes heap memory owned by
    /// payloads). Used by the scale bench's per-peer accounting.
    pub fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self
                .wheel
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<Key>())
                .sum::<usize>()
            + self.wheel.capacity() * std::mem::size_of::<Vec<Key>>()
            + self.overflow.capacity() * std::mem::size_of::<Reverse<Key>>()
    }

    /// Schedules `ev` at `at` with an internally assigned tie-break
    /// sequence (schedule order), returning a cancellation handle.
    pub fn push(&mut self, at: SimTime, ev: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(at, seq, ev)
    }

    /// Schedules `ev` at `at` with a caller-supplied tie-break key.
    ///
    /// Events popping at the same time are ordered by ascending `key`.
    /// Keys should be derived from event content (e.g. origin id and a
    /// per-origin counter) so pop order is independent of push order —
    /// the property the sharded runner's determinism rests on. Do not mix
    /// `push` and `push_keyed` on one queue: the internal sequence counter
    /// and caller keys share the tie-break space.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, ev: T) -> EventId {
        self.push_with_seq(at, key, ev)
    }

    fn push_with_seq(&mut self, at: SimTime, seq: u64, ev: T) -> EventId {
        let at_ns = at.as_nanos();
        let slot_idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    seq: 0,
                    loc: Loc::Overflow,
                    ev: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let key = Key {
            at: at_ns,
            seq,
            slot: slot_idx,
        };

        // An event never schedules before the cursor (time is monotone);
        // clamp defensively so a misuse degrades to FIFO, not a panic.
        let bucket = (at_ns >> BUCKET_SHIFT).max(self.cursor);
        let loc = if bucket - self.cursor < WHEEL_BUCKETS as u64 {
            let idx = (bucket % WHEEL_BUCKETS as u64) as usize;
            if bucket == self.cursor && self.cursor_sorted {
                // Keep the draining bucket sorted descending.
                let pos = self.wheel[idx].partition_point(|k| *k > key);
                self.wheel[idx].insert(pos, key);
            } else {
                self.wheel[idx].push(key);
            }
            self.wheel_len += 1;
            Loc::Wheel(bucket)
        } else {
            self.overflow.push(Reverse(key));
            Loc::Overflow
        };

        let slot = &mut self.slots[slot_idx as usize];
        slot.seq = seq;
        slot.loc = loc;
        slot.ev = Some(ev);
        self.len += 1;
        EventId {
            slot: slot_idx,
            gen: slot.gen,
        }
    }

    /// Pops the earliest event (ties broken by ascending tie-break key,
    /// i.e. schedule order under [`CalendarQueue::push`]).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let mut idx = (self.cursor % WHEEL_BUCKETS as u64) as usize;
        // Fast path: keep draining an already-sorted cursor bucket.
        if !self.cursor_sorted || self.wheel[idx].is_empty() {
            let bucket = self.first_bucket()?;
            self.advance_cursor_to(bucket);
            idx = (self.cursor % WHEEL_BUCKETS as u64) as usize;
            if !self.cursor_sorted {
                self.wheel[idx].sort_unstable_by(|a, b| b.cmp(a));
                self.cursor_sorted = true;
            }
        }
        let key = self.wheel[idx].pop().expect("first_bucket is non-empty");
        self.wheel_len -= 1;
        self.len -= 1;
        let slot = &mut self.slots[key.slot as usize];
        let ev = slot.ev.take().expect("live key has a payload");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.slot);
        Some((SimTime::from_nanos(key.at), ev))
    }

    /// Pops the earliest event only if it is scheduled strictly before
    /// `end`. The sharded runner's window drain: each shard consumes its
    /// queue up to the lookahead boundary and no further.
    pub fn pop_before(&mut self, end: SimTime) -> Option<(SimTime, T)> {
        if self.next_at()? < end {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest event without popping it.
    pub fn next_at(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return self
                .overflow
                .peek()
                .map(|Reverse(k)| SimTime::from_nanos(k.at));
        }
        let mut b = self.cursor;
        loop {
            let bucket = &self.wheel[(b % WHEEL_BUCKETS as u64) as usize];
            if !bucket.is_empty() {
                let at = if b == self.cursor && self.cursor_sorted {
                    bucket.last().expect("non-empty").at
                } else {
                    bucket.iter().min().expect("non-empty").at
                };
                return Some(SimTime::from_nanos(at));
            }
            b += 1;
        }
    }

    /// Cancels a scheduled event, releasing its slot (and payload memory)
    /// immediately. Returns `false` if the handle is stale — the event
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if slot.gen != id.gen || slot.ev.is_none() {
            return false;
        }
        slot.ev = None;
        slot.gen = slot.gen.wrapping_add(1);
        let seq = slot.seq;
        let loc = slot.loc;
        self.free.push(id.slot);
        self.len -= 1;
        match loc {
            Loc::Wheel(bucket) => {
                let v = &mut self.wheel[(bucket % WHEEL_BUCKETS as u64) as usize];
                let pos = v
                    .iter()
                    .position(|k| k.seq == seq)
                    .expect("wheel location is current");
                // `remove` keeps a sorted cursor bucket sorted.
                v.remove(pos);
                self.wheel_len -= 1;
            }
            Loc::Overflow => {
                // Rare (cancellations target near-term timers); rebuilding
                // the far-future tier keeps every remaining key live so
                // peeks never have to skip tombstones.
                let mut keys = std::mem::take(&mut self.overflow).into_vec();
                keys.retain(|Reverse(k)| k.seq != seq);
                self.overflow = BinaryHeap::from(keys);
            }
        }
        true
    }

    /// Informs the queue that simulation time jumped to `now` without
    /// popping (e.g. `advance_to`). Repositions the wheel cursor so later
    /// pushes land in the right tier.
    pub fn advance_time(&mut self, now: SimTime) {
        let bucket = now.as_nanos() >> BUCKET_SHIFT;
        if bucket > self.cursor {
            // Every bucket strictly before `now`'s is empty (its whole
            // range is in the past), so the jump skips no events.
            if let Some(first) = self.first_bucket() {
                self.advance_cursor_to(first.min(bucket));
            } else {
                self.advance_cursor_to(bucket);
            }
        }
    }

    /// Absolute bucket index of the earliest event, if any.
    fn first_bucket(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return self.overflow.peek().map(|Reverse(k)| k.at >> BUCKET_SHIFT);
        }
        let mut b = self.cursor;
        loop {
            if !self.wheel[(b % WHEEL_BUCKETS as u64) as usize].is_empty() {
                return Some(b);
            }
            b += 1;
        }
    }

    /// Moves the cursor forward to `bucket`, pulling overflow keys that
    /// fall inside the new horizon into the wheel. Callers must not jump
    /// past a non-empty bucket.
    fn advance_cursor_to(&mut self, bucket: u64) {
        debug_assert!(bucket >= self.cursor, "cursor went backwards");
        if bucket == self.cursor {
            return;
        }
        self.cursor = bucket;
        self.cursor_sorted = false;
        let horizon = self.cursor + WHEEL_BUCKETS as u64;
        while let Some(Reverse(k)) = self.overflow.peek() {
            if (k.at >> BUCKET_SHIFT) >= horizon {
                break;
            }
            let Reverse(k) = self.overflow.pop().expect("peeked");
            let b = k.at >> BUCKET_SHIFT;
            debug_assert!(b >= self.cursor, "overflow key behind cursor");
            self.slots[k.slot as usize].loc = Loc::Wheel(b);
            self.wheel[(b % WHEEL_BUCKETS as u64) as usize].push(k);
            self.wheel_len += 1;
        }
    }
}

/// The original scheduler — a `BinaryHeap` ordering index plus a side
/// `HashMap` payload store, one heap op **and** one hash insert/remove per
/// event. Kept as the reference implementation: the differential tests
/// below prove [`EventQueue`] pops in the identical order, and
/// `sim_bench` measures the speedup against it.
#[derive(Debug, Default)]
pub struct HeapMapQueue {
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    pending: HashMap<u64, Event>,
    next_seq: u64,
}

impl HeapMapQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `ev` at `at`.
    pub fn push(&mut self, at: SimTime, ev: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq, ev);
        self.queue.push(Reverse((at.as_nanos(), seq)));
    }

    /// Pops the earliest event (ties broken by schedule order).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let Reverse((at, seq)) = self.queue.pop()?;
        let ev = self
            .pending
            .remove(&seq)
            .expect("queued event has a pending entry");
        Some((SimTime::from_nanos(at), ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NodeId;
    use crate::rng::SimRng;

    fn timer(token: u64) -> Event {
        Event::Timer {
            node: NodeId(0),
            token,
        }
    }

    fn tok(ev: &Event) -> u64 {
        match ev {
            Event::Timer { token, .. } => *token,
            _ => unreachable!("tests use timers"),
        }
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), timer(1));
        q.push(SimTime::from_millis(2), timer(2));
        q.push(SimTime::from_millis(5), timer(3));
        q.push(SimTime::from_secs(10), timer(4)); // overflow tier
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tok(&e))
            .collect();
        assert_eq!(order, vec![2, 1, 3, 4]);
    }

    #[test]
    fn next_at_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), timer(1)); // overflow only
        assert_eq!(q.next_at(), Some(SimTime::from_secs(3)));
        q.push(SimTime::from_millis(1), timer(2));
        assert_eq!(q.next_at(), Some(SimTime::from_millis(1)));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_millis(1));
        assert_eq!(q.next_at(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn cancel_is_eager_and_exactly_once() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_millis(1), timer(1));
        let b = q.push(SimTime::from_millis(2), timer(2));
        let far = q.push(SimTime::from_secs(30), timer(3));
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel is a no-op");
        assert!(q.cancel(far), "overflow-tier cancel works");
        assert_eq!(q.len(), 1);
        assert_eq!(tok(&q.pop().unwrap().1), 2);
        assert!(q.pop().is_none());
        assert!(!q.cancel(b), "fired events cannot be cancelled");
    }

    #[test]
    fn slots_are_reused_under_churn() {
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            for i in 0..16 {
                q.push(SimTime::from_millis(round + 1), timer(i));
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.stats().slots <= 16,
            "slab stays at the high-water mark, got {}",
            q.stats().slots
        );
    }

    #[test]
    fn push_into_sorted_draining_bucket_keeps_order() {
        let mut q = EventQueue::new();
        // Same-bucket events (bucket width ~0.5 ms; use nanosecond offsets).
        q.push(SimTime::from_nanos(100), timer(1));
        q.push(SimTime::from_nanos(300), timer(3));
        let (_, e) = q.pop().unwrap(); // sorts the bucket
        assert_eq!(tok(&e), 1);
        q.push(SimTime::from_nanos(200), timer(2));
        q.push(SimTime::from_nanos(300), timer(4)); // ties after 3
        assert_eq!(tok(&q.pop().unwrap().1), 2);
        assert_eq!(tok(&q.pop().unwrap().1), 3);
        assert_eq!(tok(&q.pop().unwrap().1), 4);
    }

    #[test]
    fn keyed_pop_order_is_push_order_independent() {
        // The sharded runner's determinism hinge: content-derived keys
        // make tie order a function of the events, not of who pushed
        // first. Pushing the same set in two different orders must drain
        // identically.
        let evs = [(5u64, 30u64), (5, 10), (5, 20), (2, 99), (5, 15)];
        let drain = |order: &[usize]| {
            let mut q: CalendarQueue<u64> = CalendarQueue::new();
            for &i in order {
                let (ms, key) = evs[i];
                q.push_keyed(SimTime::from_millis(ms), key, key);
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        let a = drain(&[0, 1, 2, 3, 4]);
        let b = drain(&[4, 3, 2, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().map(|&(_, k)| k).collect::<Vec<_>>(),
            vec![99, 10, 15, 20, 30]
        );
    }

    #[test]
    fn pop_before_respects_the_window_boundary() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.push_keyed(SimTime::from_millis(1), 0, 1);
        q.push_keyed(SimTime::from_millis(5), 1, 5);
        q.push_keyed(SimTime::from_millis(9), 2, 9);
        let end = SimTime::from_millis(5);
        let mut drained = Vec::new();
        while let Some((at, v)) = q.pop_before(end) {
            assert!(at < end, "window drain never crosses the boundary");
            drained.push(v);
        }
        assert_eq!(drained, vec![1], "the boundary event itself stays queued");
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_at(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn generic_payloads_work_with_cancel_and_stats() {
        let mut q: CalendarQueue<String> = CalendarQueue::new();
        let a = q.push(SimTime::from_millis(1), "a".into());
        q.push(SimTime::from_millis(2), "b".into());
        assert!(q.cancel(a));
        assert_eq!(q.stats().live, 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn agrees_with_heapmap_reference_under_random_churn() {
        let mut rng = SimRng::seed(99);
        let mut new_q = EventQueue::new();
        let mut old_q = HeapMapQueue::new();
        let mut now = SimTime::ZERO;
        let mut token = 0u64;
        for _ in 0..5_000 {
            if rng.chance(0.6) || new_q.is_empty() {
                // Mixed near/far delays exercise both tiers.
                let delay_ns = if rng.chance(0.8) {
                    rng.range(0..200_000_000u64)
                } else {
                    rng.range(0..5_000_000_000u64)
                };
                let at = now + std::time::Duration::from_nanos(delay_ns);
                new_q.push(at, timer(token));
                old_q.push(at, timer(token));
                token += 1;
            } else {
                let a = new_q.pop().expect("non-empty");
                let b = old_q.pop().expect("reference non-empty");
                assert_eq!(a.0, b.0, "pop times agree");
                assert_eq!(tok(&a.1), tok(&b.1), "pop payloads agree");
                now = a.0;
            }
        }
        while let Some(a) = new_q.pop() {
            let b = old_q.pop().expect("reference drains in step");
            assert_eq!((a.0, tok(&a.1)), (b.0, tok(&b.1)));
        }
        assert!(old_q.pop().is_none());
    }
}

//! Virtual time for the simulator.
//!
//! All framework code runs on [`SimTime`] — virtual nanoseconds since the
//! start of a simulation. Library code never reads the wall clock, which
//! makes every experiment reproducible bit-for-bit.

use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_millis(), 1500);
        let t2 = t + Duration::from_millis(500);
        assert_eq!(t2, SimTime::from_secs(2));
        assert_eq!(t2 - t, Duration::from_millis(500));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250s");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.saturating_since(a), Duration::from_secs(2));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }
}

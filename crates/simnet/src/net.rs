//! The discrete-event network fabric.
//!
//! [`Network`] plays the role that the Internet plus Docker's virtual
//! networking plays in the paper's PDN analyzer (§IV-A, Figure 2): it moves
//! opaque datagrams between simulated hosts with realistic latency,
//! bandwidth contention, loss, and NAT behaviour, while offering exactly the
//! three interposition points the analyzer relies on —
//!
//! 1. **capture** ([`Network::capture`]): every frame on the wire, like
//!    `tcpdump` on `docker0`;
//! 2. **taps** ([`Network::install_tap`]): per-node middleboxes that can
//!    drop, rewrite or redirect traffic, like the analyzer's MITM proxy;
//! 3. **resource stats** ([`Network::resources`]): per-node CPU/memory/IO
//!    counters, like the Docker Engine stats API.
//!
//! Protocol logic lives in higher layers (`pdn-webrtc`, `pdn-provider`);
//! this module only transports bytes.

use std::net::Ipv4Addr;
use std::time::Duration;

use bytes::Bytes;

use crate::addr::Addr;
use crate::fxhash::FxHashMap;
use crate::geo::{continent_of, GeoInfo, GeoIpService};
use crate::nat::{Nat, NatKind};
use crate::queue::{EventId, EventQueue, EventQueueStats};
use crate::resources::ResourceModel;
use crate::rng::SimRng;
use crate::route::RouteTable;
use crate::time::SimTime;

/// Identifier of a simulated host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a NAT box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NatId(pub u32);

/// Transport protocol tag carried on each datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Transport {
    /// Unreliable datagram (STUN, DTLS, media).
    Udp,
    /// Stream segment (HTTP, WebSocket signaling). The simulator does not
    /// model retransmission; `Tcp` frames are simply never lost.
    Tcp,
}

/// A packet on the wire.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Source address as seen by the recipient (post-NAT).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Transport tag.
    pub transport: Transport,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

/// Access-link characteristics of a host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation latency of the access link.
    pub latency: Duration,
    /// Maximum random jitter added per packet.
    pub jitter: Duration,
    /// Uplink capacity in bits per second.
    pub up_bps: u64,
    /// Downlink capacity in bits per second.
    pub down_bps: u64,
    /// Packet loss probability for UDP frames.
    pub loss: f64,
}

impl LinkSpec {
    /// A typical residential broadband link: 100/20 Mbps, 15 ms, light loss.
    pub fn residential() -> Self {
        LinkSpec {
            latency: Duration::from_millis(15),
            jitter: Duration::from_millis(5),
            up_bps: 20_000_000,
            down_bps: 100_000_000,
            loss: 0.001,
        }
    }

    /// A well-provisioned datacenter link: 1 Gbps symmetric, 2 ms.
    pub fn datacenter() -> Self {
        LinkSpec {
            latency: Duration::from_millis(2),
            jitter: Duration::from_millis(1),
            up_bps: 1_000_000_000,
            down_bps: 1_000_000_000,
            loss: 0.0,
        }
    }

    /// A constrained mobile link: 20/5 Mbps, 40 ms, lossier.
    pub fn cellular() -> Self {
        LinkSpec {
            latency: Duration::from_millis(40),
            jitter: Duration::from_millis(15),
            up_bps: 5_000_000,
            down_bps: 20_000_000,
            loss: 0.005,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::residential()
    }
}

/// Direction of a frame relative to a tapped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDirection {
    /// The node is sending the frame.
    Outbound,
    /// The node is about to receive the frame.
    Inbound,
}

/// Verdict returned by a tap for one frame.
#[derive(Debug, Clone, Default)]
pub struct TapVerdict {
    /// Drop the frame entirely.
    pub drop: bool,
    /// Replace the payload.
    pub new_payload: Option<Bytes>,
    /// Redirect to a different destination (outbound taps only).
    pub redirect_to: Option<Addr>,
}

impl TapVerdict {
    /// Let the frame pass unchanged.
    pub fn forward() -> Self {
        TapVerdict::default()
    }

    /// Silently drop the frame.
    pub fn drop_frame() -> Self {
        TapVerdict {
            drop: true,
            ..Default::default()
        }
    }

    /// Forward with a rewritten payload.
    pub fn replace(payload: Bytes) -> Self {
        TapVerdict {
            new_payload: Some(payload),
            ..Default::default()
        }
    }

    /// Redirect to another destination, keeping the payload.
    pub fn redirect(to: Addr) -> Self {
        TapVerdict {
            redirect_to: Some(to),
            ..Default::default()
        }
    }
}

/// A middlebox function observing one node's traffic.
pub type TapFn = Box<dyn FnMut(TapDirection, &Datagram) -> TapVerdict + Send>;

/// A capture-time filter: return `true` to record the frame.
///
/// Runs *before* the frame is cloned into the capture ring, so attack
/// tests that only care about (say) UDP media frames stop paying clone
/// and memory costs for the traffic they would post-filter away.
pub type CaptureFilter = Box<dyn FnMut(SimTime, &Datagram) -> bool + Send>;

/// Handle returned by [`Network::set_timer`], usable with
/// [`Network::cancel_timer`]. Stale after the timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(EventId);

/// A frame recorded by the capture facility (one `tcpdump` line).
#[derive(Debug, Clone)]
pub struct CapturedFrame {
    /// Transmission time.
    pub at: SimTime,
    /// Wire source (post-NAT).
    pub src: Addr,
    /// Wire destination.
    pub dst: Addr,
    /// Transport tag.
    pub transport: Transport,
    /// Full payload.
    pub payload: Bytes,
}

/// An event delivered by [`Network::step`].
#[derive(Debug, Clone)]
pub enum Event {
    /// A datagram arriving at a node.
    Packet {
        /// Receiving node.
        to: NodeId,
        /// The datagram, with `dst` translated back to the node's own
        /// address realm when behind NAT.
        dgram: Datagram,
    },
    /// A batch of datagrams from one [`Network::send_burst`] call arriving
    /// at a node as a single unit, scheduled when the last frame finishes
    /// reception (receive-side aggregation, as a NIC's GRO does). Frames
    /// are in send order; per-frame loss, jitter, capture, and bandwidth
    /// accounting are identical to sequential [`Network::send`] calls.
    Burst {
        /// Receiving node.
        to: NodeId,
        /// The surviving datagrams, each translated like a
        /// [`Event::Packet`] delivery.
        dgrams: Vec<Datagram>,
    },
    /// A timer set via [`Network::set_timer`] firing.
    Timer {
        /// The node the timer belongs to.
        node: NodeId,
        /// Caller-chosen token.
        token: u64,
    },
}

/// Why a send did not result in a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No host or NAT owns the destination IP.
    Unroutable,
    /// Random loss on the path.
    Loss,
    /// The destination NAT's filtering policy rejected the frame.
    NatFiltered,
    /// Source or destination host is down.
    NodeDown,
    /// A tap dropped the frame.
    Tapped,
}

/// Result of [`Network::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Scheduled for delivery at the given time.
    Sent {
        /// Arrival time at the destination application.
        deliver_at: SimTime,
    },
    /// Dropped; no delivery will occur.
    Dropped(DropReason),
}

impl SendOutcome {
    /// Whether the frame was scheduled.
    pub fn is_sent(&self) -> bool {
        matches!(self, SendOutcome::Sent { .. })
    }
}

struct NodeInfo {
    addr_ip: Ipv4Addr,
    nat: Option<usize>,
    link: LinkSpec,
    geo: GeoInfo,
    up_free_at: SimTime,
    down_free_at: SimTime,
    res: ResourceModel,
    alive: bool,
}

/// Default cap on the capture ring (frames); see
/// [`Network::set_capture_limit`].
pub const DEFAULT_CAPTURE_LIMIT: usize = 1 << 20;

/// The capture facility: a preallocated frame buffer with a hard capacity
/// and an optional capture-time filter. Like a pcap kernel ring, a full
/// buffer drops new frames (and counts them) rather than growing without
/// bound.
struct CaptureRing {
    buf: Vec<CapturedFrame>,
    limit: usize,
    enabled: bool,
    filter: Option<CaptureFilter>,
    filtered: u64,
    dropped: u64,
}

impl CaptureRing {
    fn new() -> Self {
        CaptureRing {
            buf: Vec::new(),
            limit: DEFAULT_CAPTURE_LIMIT,
            enabled: false,
            filter: None,
            filtered: 0,
            dropped: 0,
        }
    }
}

/// The simulated network fabric. See the crate-level documentation for the
/// overall model.
pub struct Network {
    now: SimTime,
    rng: SimRng,
    geoip: GeoIpService,
    nodes: Vec<NodeInfo>,
    nats: Vec<Nat>,
    // wire IP -> owner
    public_routes: RouteTable<Route>,
    private_routes: RouteTable<NodeId>,
    next_private: u32,
    queue: EventQueue,
    taps: FxHashMap<NodeId, TapFn>,
    capture: CaptureRing,
}

#[derive(Debug, Clone, Copy)]
enum Route {
    Host(NodeId),
    Nat(usize),
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("nats", &self.nats.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Network {
    /// Creates an empty network seeded deterministically.
    pub fn new(seed: u64) -> Self {
        Network {
            now: SimTime::ZERO,
            rng: SimRng::seed(seed),
            geoip: GeoIpService::new(),
            nodes: Vec::new(),
            nats: Vec::new(),
            public_routes: RouteTable::new(),
            private_routes: RouteTable::new(),
            next_private: 1,
            queue: EventQueue::new(),
            taps: FxHashMap::default(),
            capture: CaptureRing::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The registry used to geolocate public addresses (the IPinfo stand-in).
    pub fn geoip(&self) -> &GeoIpService {
        &self.geoip
    }

    /// Deterministic RNG shared by the simulation (fork children from it
    /// rather than consuming it directly in application code).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Adds a host with its own public IP.
    pub fn add_public_host(&mut self, geo: GeoInfo, link: LinkSpec) -> NodeId {
        let ip = self.geoip.allocate(&geo);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            addr_ip: ip,
            nat: None,
            link,
            geo,
            up_free_at: SimTime::ZERO,
            down_free_at: SimTime::ZERO,
            res: ResourceModel::new(),
            alive: true,
        });
        self.public_routes.insert(ip, Route::Host(id));
        id
    }

    /// Adds a NAT box with a public IP in `geo`.
    pub fn add_nat(&mut self, kind: NatKind, geo: &GeoInfo) -> NatId {
        let ip = self.geoip.allocate(geo);
        let idx = self.nats.len();
        self.nats.push(Nat::new(kind, ip));
        self.public_routes.insert(ip, Route::Nat(idx));
        NatId(idx as u32)
    }

    /// Adds a host behind `nat`, with a unique RFC 1918 address.
    ///
    /// The host inherits no public IP of its own; its wire identity is the
    /// NAT's public IP with per-flow ports.
    pub fn add_host_behind(&mut self, nat: NatId, geo: GeoInfo, link: LinkSpec) -> NodeId {
        let n = self.next_private;
        self.next_private += 1;
        // Unique 10.x.y.z per host keeps demo topologies unambiguous. Real
        // realms overlap, but overlapping space adds nothing to the modeled
        // attacks.
        let ip = Ipv4Addr::new(
            10,
            ((n >> 16) & 0xff) as u8,
            ((n >> 8) & 0xff) as u8,
            (n & 0xff) as u8,
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            addr_ip: ip,
            nat: Some(nat.0 as usize),
            link,
            geo,
            up_free_at: SimTime::ZERO,
            down_free_at: SimTime::ZERO,
            res: ResourceModel::new(),
            alive: true,
        });
        self.private_routes.insert(ip, id);
        id
    }

    /// The node's own IP (private when behind NAT).
    pub fn ip(&self, node: NodeId) -> Ipv4Addr {
        self.node(node).addr_ip
    }

    /// The node's public wire IP: its own IP, or its NAT's public IP.
    pub fn public_ip(&self, node: NodeId) -> Ipv4Addr {
        let info = self.node(node);
        match info.nat {
            Some(idx) => self.nats[idx].public_ip(),
            None => info.addr_ip,
        }
    }

    /// Whether the node sits behind a NAT.
    pub fn is_natted(&self, node: NodeId) -> bool {
        self.node(node).nat.is_some()
    }

    /// The NAT kind in front of the node, if any.
    pub fn nat_kind(&self, node: NodeId) -> Option<NatKind> {
        self.node(node).nat.map(|i| self.nats[i].kind())
    }

    /// Geographic registration of the node.
    pub fn geo(&self, node: NodeId) -> &GeoInfo {
        &self.node(node).geo
    }

    /// Immutable resource counters of the node.
    pub fn resources(&self, node: NodeId) -> &ResourceModel {
        &self.node(node).res
    }

    /// Mutable resource counters (application layers charge CPU/memory here).
    pub fn resources_mut(&mut self, node: NodeId) -> &mut ResourceModel {
        &mut self.nodes[node.0 as usize].res
    }

    /// Takes a resource sample of every node at the current time.
    pub fn sample_resources(&mut self) {
        let now = self.now;
        for n in &mut self.nodes {
            n.res.sample(now);
        }
    }

    /// Marks a node up or down (failure injection).
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.nodes[node.0 as usize].alive = alive;
    }

    /// Whether the node is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.node(node).alive
    }

    /// Installs (or replaces) the middlebox tap on `node`.
    pub fn install_tap(&mut self, node: NodeId, tap: TapFn) {
        self.taps.insert(node, tap);
    }

    /// Removes the tap on `node`.
    pub fn remove_tap(&mut self, node: NodeId) {
        self.taps.remove(&node);
    }

    /// Enables or disables frame capture. Enabling preallocates the ring
    /// so steady-state capture starts without reallocation.
    pub fn set_capture(&mut self, enabled: bool) {
        self.capture.enabled = enabled;
        if enabled && self.capture.buf.capacity() == 0 {
            self.capture.buf.reserve(self.capture.limit.min(4_096));
        }
    }

    /// Caps the capture ring at `limit` frames. Once full, further frames
    /// are dropped and counted in [`Network::capture_dropped`] — the
    /// behaviour of a full pcap kernel buffer.
    pub fn set_capture_limit(&mut self, limit: usize) {
        self.capture.limit = limit.max(1);
    }

    /// Installs a capture-time filter: only frames for which it returns
    /// `true` enter the ring. Filtered frames are never cloned and count
    /// in [`Network::capture_filtered`].
    pub fn set_capture_filter(&mut self, filter: CaptureFilter) {
        self.capture.filter = Some(filter);
    }

    /// Removes the capture filter; every frame is recorded again.
    pub fn clear_capture_filter(&mut self) {
        self.capture.filter = None;
    }

    /// Frames rejected by the capture filter so far.
    pub fn capture_filtered(&self) -> u64 {
        self.capture.filtered
    }

    /// Frames lost to a full capture ring so far.
    pub fn capture_dropped(&self) -> u64 {
        self.capture.dropped
    }

    /// All frames captured so far.
    pub fn capture(&self) -> &[CapturedFrame] {
        &self.capture.buf
    }

    /// Clears the capture buffer (capacity is kept) and resets the
    /// filtered/dropped counters.
    pub fn clear_capture(&mut self) {
        self.capture.buf.clear();
        self.capture.filtered = 0;
        self.capture.dropped = 0;
    }

    /// Schedules `token` to fire at `node` after `delay`.
    pub fn set_timer(&mut self, node: NodeId, delay: Duration, token: u64) -> TimerId {
        let at = self.now + delay;
        TimerId(self.queue.push(at, Event::Timer { node, token }))
    }

    /// Cancels a pending timer. The queue slot is reclaimed immediately;
    /// returns `false` if the timer already fired or was cancelled.
    pub fn cancel_timer(&mut self, timer: TimerId) -> bool {
        self.queue.cancel(timer.0)
    }

    /// Occupancy counters of the event queue (live events, slab
    /// high-water mark, tier sizes).
    pub fn queue_stats(&self) -> EventQueueStats {
        self.queue.stats()
    }

    /// Sends `payload` from `node` (source port `src_port`) to `dst`.
    ///
    /// Applies, in order: the sender's tap (may drop/rewrite/redirect), NAT
    /// egress, routing, loss, NAT ingress filtering, the receiver's tap
    /// (may drop/rewrite), then schedules delivery honouring both access
    /// links' bandwidth.
    pub fn send(
        &mut self,
        node: NodeId,
        src_port: u16,
        dst: Addr,
        transport: Transport,
        payload: Bytes,
    ) -> SendOutcome {
        let sender_has_tap = self.taps.contains_key(&node);
        self.send_inner(
            node,
            src_port,
            dst,
            transport,
            payload,
            sender_has_tap,
            &mut None,
            None,
        )
    }

    /// Sends several datagrams from `node` to the same destination as one
    /// batch (e.g. the DTLS records of a multi-record channel message).
    ///
    /// Per-frame behaviour — taps, NAT egress state, capture, loss and
    /// jitter draws, bandwidth chaining — is *identical* to calling
    /// [`Network::send`] once per frame, in order; the batch hoists the
    /// per-send bookkeeping: the sender's tap lookup happens once, and
    /// route resolution (public table + NAT ingress + private table) is
    /// computed once and reused for every frame the tap didn't redirect.
    ///
    /// Delivery is aggregated: the frames surviving to one destination
    /// arrive together as a single [`Event::Burst`] scheduled at the
    /// moment the *last* of them finishes reception (a lone survivor
    /// degrades to a plain [`Event::Packet`]). The receiver then decodes
    /// the whole burst in one pass instead of N event dispatches.
    pub fn send_burst(
        &mut self,
        node: NodeId,
        src_port: u16,
        dst: Addr,
        transport: Transport,
        frames: Vec<Bytes>,
    ) -> Vec<SendOutcome> {
        let sender_has_tap = self.taps.contains_key(&node);
        let mut route_cache = None;
        let mut pending: Vec<(SimTime, NodeId, Datagram)> = Vec::new();
        let outcomes: Vec<SendOutcome> = frames
            .into_iter()
            .map(|payload| {
                self.send_inner(
                    node,
                    src_port,
                    dst,
                    transport,
                    payload,
                    sender_has_tap,
                    &mut route_cache,
                    Some(&mut pending),
                )
            })
            .collect();
        // Group surviving frames by destination, preserving send order.
        // Redirecting taps can split a burst across destinations; each
        // group becomes one event at its own last delivery completion
        // (per-destination `deliver_at` is monotone: reception chains on
        // `down_free_at`).
        while let Some(&(first_at, to, _)) = pending.first() {
            let mut at = first_at;
            let mut dgrams = Vec::new();
            let mut rest = Vec::new();
            for (t, n, d) in pending.drain(..) {
                if n == to {
                    at = at.max(t);
                    dgrams.push(d);
                } else {
                    rest.push((t, n, d));
                }
            }
            if dgrams.len() == 1 {
                let dgram = dgrams.pop().expect("length checked");
                self.queue.push(at, Event::Packet { to, dgram });
            } else {
                self.queue.push(at, Event::Burst { to, dgrams });
            }
            pending = rest;
        }
        outcomes
    }

    #[allow(clippy::too_many_arguments)] // internal: the two send entry points above fan in here
    fn send_inner(
        &mut self,
        node: NodeId,
        src_port: u16,
        dst: Addr,
        transport: Transport,
        payload: Bytes,
        sender_has_tap: bool,
        route_cache: &mut Option<(NodeId, Addr)>,
        burst_buf: Option<&mut Vec<(SimTime, NodeId, Datagram)>>,
    ) -> SendOutcome {
        if !self.node(node).alive {
            return SendOutcome::Dropped(DropReason::NodeDown);
        }
        let src_internal = Addr::from_ip(self.node(node).addr_ip, src_port);
        let mut dgram = Datagram {
            src: src_internal,
            dst,
            transport,
            payload,
        };

        // Sender-side tap (the analyzer's proxy client).
        let mut redirected = false;
        if sender_has_tap {
            if let Some(verdict) = self.apply_tap(node, TapDirection::Outbound, &dgram) {
                if verdict.drop {
                    return SendOutcome::Dropped(DropReason::Tapped);
                }
                if let Some(p) = verdict.new_payload {
                    dgram.payload = p;
                }
                if let Some(d) = verdict.redirect_to {
                    redirected = dgram.dst != d;
                    dgram.dst = d;
                }
            }
        }

        // NAT egress: rewrite the wire source. Runs per frame even in a
        // burst — the NAT records every contacted remote (its filtering
        // state), so skipping calls would diverge from sequential sends.
        if let Some(nat_idx) = self.node(node).nat {
            dgram.src = self.nats[nat_idx].egress(src_internal, dgram.dst);
        }

        let len = dgram.payload.len().max(64) as u64; // 64-byte minimum frame

        // Routing. Route resolution is pure (NAT ingress does not mutate),
        // so frames of a burst that kept the original destination reuse
        // the first frame's result; a redirected frame recomputes and
        // never touches the cache.
        let cached = (!redirected).then_some(*route_cache).flatten();
        let (dest_node, final_dst) = match cached {
            Some(pair) => pair,
            None => match self.route(&dgram, node) {
                Ok(pair) => {
                    if !redirected {
                        *route_cache = Some(pair);
                    }
                    pair
                }
                Err(reason) => {
                    self.capture_frame(&dgram);
                    return SendOutcome::Dropped(reason);
                }
            },
        };
        if !self.node(dest_node).alive {
            self.capture_frame(&dgram);
            return SendOutcome::Dropped(DropReason::NodeDown);
        }

        self.capture_frame(&dgram);

        // Loss applies to UDP only (TCP models retransmission).
        if dgram.transport == Transport::Udp {
            let loss = self.node(node).link.loss + self.node(dest_node).link.loss;
            if self.rng.chance(loss) {
                return SendOutcome::Dropped(DropReason::Loss);
            }
        }

        // Receiver-side tap. The clone is a refcount bump on the payload
        // `Bytes`, not a copy; only a rewriting tap allocates.
        let mut delivered_dgram = Datagram {
            dst: final_dst,
            ..dgram.clone()
        };
        if let Some(verdict) = self.apply_tap(dest_node, TapDirection::Inbound, &delivered_dgram) {
            if verdict.drop {
                return SendOutcome::Dropped(DropReason::Tapped);
            }
            if let Some(p) = verdict.new_payload {
                delivered_dgram.payload = p;
            }
        }

        // Transmission + propagation + reception scheduling.
        let src_link = self.node(node).link;
        let dst_link = self.node(dest_node).link;
        let tx_start = self.now.max(self.node(node).up_free_at);
        let tx_dur = Self::serialization(len, src_link.up_bps);
        let tx_end = tx_start + tx_dur;
        self.nodes[node.0 as usize].up_free_at = tx_end;

        let prop = src_link.latency
            + dst_link.latency
            + self.backbone_latency(node, dest_node)
            + self.jitter(src_link.jitter + dst_link.jitter);

        let rx_start = (tx_end + prop).max(self.node(dest_node).down_free_at);
        let rx_dur = Self::serialization(len, dst_link.down_bps);
        let deliver_at = rx_start + rx_dur;
        self.nodes[dest_node.0 as usize].down_free_at = deliver_at;

        self.nodes[node.0 as usize].res.record_tx(len);
        self.nodes[dest_node.0 as usize].res.record_rx(len);

        match burst_buf {
            // Burst sends defer enqueueing so the caller can aggregate
            // all survivors to one destination into a single event.
            Some(buf) => buf.push((deliver_at, dest_node, delivered_dgram)),
            None => {
                self.queue.push(
                    deliver_at,
                    Event::Packet {
                        to: dest_node,
                        dgram: delivered_dgram,
                    },
                );
            }
        }
        SendOutcome::Sent { deliver_at }
    }

    /// Pops the next event, advancing virtual time to it.
    ///
    /// Returns `None` when the queue is empty.
    pub fn step(&mut self) -> Option<(SimTime, Event)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        Some((at, ev))
    }

    /// Pops events until the queue is empty or the next event is after
    /// `deadline`; advances time to `deadline` at the end.
    ///
    /// Returns the drained events. Use [`Network::step`] in a loop when the
    /// application must react to each event (most protocol code does).
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<(SimTime, Event)> {
        let mut out = Vec::new();
        while let Some(at) = self.queue.next_at() {
            if at > deadline {
                break;
            }
            out.push(self.step().expect("peeked event exists"));
        }
        if self.now < deadline {
            self.now = deadline;
            self.queue.advance_time(deadline);
        }
        out
    }

    /// Advances time to `at` without processing events.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot advance into the past");
        self.now = at;
        self.queue.advance_time(at);
    }

    /// Whether any events remain queued.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Time of the next queued event, if any (without popping it).
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.next_at()
    }

    fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.0 as usize]
    }

    fn serialization(bytes: u64, bps: u64) -> Duration {
        Duration::from_nanos(bytes.saturating_mul(8).saturating_mul(1_000_000_000) / bps.max(1))
    }

    fn jitter(&mut self, max: Duration) -> Duration {
        if max.is_zero() {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.rng.range(0..max.as_nanos() as u64))
    }

    fn backbone_latency(&self, a: NodeId, b: NodeId) -> Duration {
        let ga = &self.node(a).geo;
        let gb = &self.node(b).geo;
        if ga.country == gb.country {
            if ga.city == gb.city {
                Duration::from_millis(3)
            } else {
                Duration::from_millis(12)
            }
        } else if continent_of(&ga.country) == continent_of(&gb.country) {
            Duration::from_millis(35)
        } else {
            Duration::from_millis(110)
        }
    }

    fn route(&self, dgram: &Datagram, src_node: NodeId) -> Result<(NodeId, Addr), DropReason> {
        match self.public_routes.get(dgram.dst.ip).copied() {
            Some(Route::Host(id)) => Ok((id, dgram.dst)),
            Some(Route::Nat(idx)) => {
                let internal = self.nats[idx]
                    .ingress(dgram.dst.port, dgram.src)
                    .ok_or(DropReason::NatFiltered)?;
                let node = *self
                    .private_routes
                    .get(internal.ip)
                    .ok_or(DropReason::Unroutable)?;
                Ok((node, internal))
            }
            None => {
                // Private addresses are only reachable from hosts in the
                // same NAT realm; from anywhere else they are bogons.
                match self.private_routes.get(dgram.dst.ip) {
                    Some(&node)
                        if self.node(src_node).nat.is_some()
                            && self.node(src_node).nat == self.node(node).nat =>
                    {
                        Ok((node, dgram.dst))
                    }
                    _ => Err(DropReason::Unroutable),
                }
            }
        }
    }

    fn apply_tap(
        &mut self,
        node: NodeId,
        dir: TapDirection,
        dgram: &Datagram,
    ) -> Option<TapVerdict> {
        let tap = self.taps.get_mut(&node)?;
        Some(tap(dir, dgram))
    }

    fn capture_frame(&mut self, dgram: &Datagram) {
        if !self.capture.enabled {
            return;
        }
        let _g = crate::profile::phase(crate::profile::Phase::Capture);
        if let Some(filter) = &mut self.capture.filter {
            if !filter(self.now, dgram) {
                self.capture.filtered += 1;
                return;
            }
        }
        if self.capture.buf.len() >= self.capture.limit {
            self.capture.dropped += 1;
            return;
        }
        self.capture.buf.push(CapturedFrame {
            at: self.now,
            src: dgram.src,
            dst: dgram.dst,
            transport: dgram.transport,
            payload: dgram.payload.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(c: &str) -> GeoInfo {
        GeoInfo::new(c, 1, "AS1")
    }

    fn two_public_hosts(net: &mut Network) -> (NodeId, NodeId) {
        let a = net.add_public_host(geo("US"), LinkSpec::residential());
        let b = net.add_public_host(geo("US"), LinkSpec::residential());
        (a, b)
    }

    #[test]
    fn basic_delivery() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        let dst = Addr::from_ip(net.ip(b), 80);
        let out = net.send(a, 5000, dst, Transport::Tcp, Bytes::from_static(b"hi"));
        assert!(out.is_sent());
        let (at, ev) = net.step().expect("one event");
        match ev {
            Event::Packet { to, dgram } => {
                assert_eq!(to, b);
                assert_eq!(&dgram.payload[..], b"hi");
                assert_eq!(dgram.src.ip, net.ip(a));
                assert_eq!(dgram.dst, dst);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(at > SimTime::ZERO);
    }

    #[test]
    fn non_rewrite_send_path_never_copies_the_payload() {
        // The payload `Bytes` must be shared by refcount from send through
        // capture to delivery: same backing allocation, zero copies, as
        // long as no tap rewrites it.
        let mut net = Network::new(1);
        net.set_capture(true);
        let (a, b) = two_public_hosts(&mut net);
        let dst = Addr::from_ip(net.ip(b), 80);
        let payload = Bytes::from(vec![0xAB; 1024]);
        let sent_ptr = payload.as_ptr();
        let out = net.send(a, 5000, dst, Transport::Tcp, payload);
        assert!(out.is_sent());
        let captured = &net.capture()[0];
        assert_eq!(
            captured.payload.as_ptr(),
            sent_ptr,
            "capture ring must share the sender's allocation"
        );
        let (_, ev) = net.step().expect("one event");
        let Event::Packet { dgram, .. } = ev else {
            panic!("unexpected event {ev:?}");
        };
        assert_eq!(
            dgram.payload.as_ptr(),
            sent_ptr,
            "delivered datagram must share the sender's allocation"
        );
    }

    #[test]
    fn unroutable_dropped() {
        let mut net = Network::new(1);
        let (a, _) = two_public_hosts(&mut net);
        let out = net.send(
            a,
            1,
            Addr::new(203, 0, 114, 1, 9),
            Transport::Udp,
            Bytes::new(),
        );
        assert_eq!(out, SendOutcome::Dropped(DropReason::Unroutable));
    }

    #[test]
    fn dead_nodes_cannot_send_or_receive() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        let dst = Addr::from_ip(net.ip(b), 80);
        net.set_alive(a, false);
        assert_eq!(
            net.send(a, 1, dst, Transport::Tcp, Bytes::new()),
            SendOutcome::Dropped(DropReason::NodeDown)
        );
        net.set_alive(a, true);
        net.set_alive(b, false);
        assert_eq!(
            net.send(a, 1, dst, Transport::Tcp, Bytes::new()),
            SendOutcome::Dropped(DropReason::NodeDown)
        );
    }

    #[test]
    fn nat_egress_rewrites_source_and_filters_ingress() {
        let mut net = Network::new(1);
        let server = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let nat = net.add_nat(NatKind::PortRestrictedCone, &geo("US"));
        let client = net.add_host_behind(nat, geo("US"), LinkSpec::residential());

        let server_addr = Addr::from_ip(net.ip(server), 3478);
        let out = net.send(
            client,
            7000,
            server_addr,
            Transport::Udp,
            Bytes::from_static(b"req"),
        );
        assert!(out.is_sent());
        let (_, ev) = net.step().unwrap();
        let observed_src = match ev {
            Event::Packet { to, dgram } => {
                assert_eq!(to, server);
                // Server sees the NAT's public IP, not the private realm.
                assert_eq!(dgram.src.ip, net.public_ip(client));
                assert_ne!(dgram.src.ip, net.ip(client));
                dgram.src
            }
            other => panic!("unexpected {other:?}"),
        };

        // Reply to the mapping succeeds (same ip+port).
        let back = net.send(
            server,
            3478,
            observed_src,
            Transport::Udp,
            Bytes::from_static(b"ok"),
        );
        assert!(back.is_sent());
        let (_, ev) = net.step().unwrap();
        match ev {
            Event::Packet { to, dgram } => {
                assert_eq!(to, client);
                // Delivered with the client's internal address.
                assert_eq!(dgram.dst, Addr::from_ip(net.ip(client), 7000));
            }
            other => panic!("unexpected {other:?}"),
        }

        // A stranger hitting the same mapping is filtered (port-restricted).
        let stranger = net.add_public_host(geo("US"), LinkSpec::residential());
        let out = net.send(stranger, 1, observed_src, Transport::Udp, Bytes::new());
        assert_eq!(out, SendOutcome::Dropped(DropReason::NatFiltered));
    }

    #[test]
    fn bandwidth_serializes_back_to_back_sends() {
        let mut net = Network::new(1);
        let slow = LinkSpec {
            up_bps: 8_000_000, // 1 MB/s
            ..LinkSpec::residential()
        };
        let a = net.add_public_host(geo("US"), slow);
        let b = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let dst = Addr::from_ip(net.ip(b), 80);
        let megabyte = Bytes::from(vec![0u8; 1_000_000]);
        let t1 = match net.send(a, 1, dst, Transport::Tcp, megabyte.clone()) {
            SendOutcome::Sent { deliver_at } => deliver_at,
            o => panic!("{o:?}"),
        };
        let t2 = match net.send(a, 1, dst, Transport::Tcp, megabyte) {
            SendOutcome::Sent { deliver_at } => deliver_at,
            o => panic!("{o:?}"),
        };
        // Second send must wait for the first 1s-long transmission.
        assert!(t2 > t1);
        assert!((t2 - t1) >= Duration::from_millis(900));
    }

    #[test]
    fn events_ordered_by_time() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        let dst = Addr::from_ip(net.ip(b), 80);
        net.set_timer(a, Duration::from_secs(10), 42);
        net.send(a, 1, dst, Transport::Tcp, Bytes::from_static(b"x"));
        let (t1, ev1) = net.step().unwrap();
        let (t2, ev2) = net.step().unwrap();
        assert!(t1 <= t2);
        assert!(matches!(ev1, Event::Packet { .. }));
        assert!(matches!(ev2, Event::Timer { node, token: 42 } if node == a));
    }

    #[test]
    fn capture_records_wire_addresses() {
        let mut net = Network::new(1);
        let server = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let nat = net.add_nat(NatKind::FullCone, &geo("US"));
        let client = net.add_host_behind(nat, geo("US"), LinkSpec::residential());
        net.set_capture(true);
        let dst = Addr::from_ip(net.ip(server), 443);
        net.send(client, 1, dst, Transport::Tcp, Bytes::from_static(b"GET"));
        assert_eq!(net.capture().len(), 1);
        let f = &net.capture()[0];
        assert_eq!(f.src.ip, net.public_ip(client));
        assert_eq!(f.dst, dst);
        net.clear_capture();
        assert!(net.capture().is_empty());
    }

    #[test]
    fn outbound_tap_can_redirect_and_rewrite() {
        let mut net = Network::new(1);
        let a = net.add_public_host(geo("US"), LinkSpec::residential());
        let real = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let fake = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let fake_addr = Addr::from_ip(net.ip(fake), 80);
        net.install_tap(
            a,
            Box::new(move |dir, d| {
                if dir == TapDirection::Outbound && d.dst.port == 80 {
                    TapVerdict {
                        redirect_to: Some(fake_addr),
                        new_payload: Some(Bytes::from_static(b"polluted")),
                        drop: false,
                    }
                } else {
                    TapVerdict::forward()
                }
            }),
        );
        let real_addr = Addr::from_ip(net.ip(real), 80);
        net.send(a, 1, real_addr, Transport::Tcp, Bytes::from_static(b"orig"));
        let (_, ev) = net.step().unwrap();
        match ev {
            Event::Packet { to, dgram } => {
                assert_eq!(to, fake, "redirected to the fake CDN");
                assert_eq!(&dgram.payload[..], b"polluted");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inbound_tap_can_drop() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        net.install_tap(
            b,
            Box::new(|dir, _| {
                if dir == TapDirection::Inbound {
                    TapVerdict::drop_frame()
                } else {
                    TapVerdict::forward()
                }
            }),
        );
        let dst = Addr::from_ip(net.ip(b), 80);
        let out = net.send(a, 1, dst, Transport::Tcp, Bytes::from_static(b"x"));
        assert_eq!(out, SendOutcome::Dropped(DropReason::Tapped));
        assert!(net.step().is_none());
    }

    #[test]
    fn resource_io_counters_update() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        let dst = Addr::from_ip(net.ip(b), 80);
        net.send(a, 1, dst, Transport::Tcp, Bytes::from(vec![0u8; 5000]));
        assert_eq!(net.resources(a).total_tx(), 5000);
        assert_eq!(net.resources(b).total_rx(), 5000);
    }

    #[test]
    fn cross_continent_latency_exceeds_domestic() {
        let mut net = Network::new(1);
        let us1 = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let us2 = net.add_public_host(geo("US"), LinkSpec::datacenter());
        let cn = net.add_public_host(geo("CN"), LinkSpec::datacenter());
        let d_us = Addr::from_ip(net.ip(us2), 1);
        let d_cn = Addr::from_ip(net.ip(cn), 1);
        let t_us = match net.send(us1, 1, d_us, Transport::Tcp, Bytes::from_static(b"x")) {
            SendOutcome::Sent { deliver_at } => deliver_at,
            o => panic!("{o:?}"),
        };
        let t_cn = match net.send(us1, 1, d_cn, Transport::Tcp, Bytes::from_static(b"x")) {
            SendOutcome::Sent { deliver_at } => deliver_at,
            o => panic!("{o:?}"),
        };
        assert!(t_cn.saturating_since(SimTime::ZERO) > t_us.saturating_since(SimTime::ZERO));
    }

    #[test]
    fn drain_until_advances_clock() {
        let mut net = Network::new(1);
        let (a, _) = two_public_hosts(&mut net);
        net.set_timer(a, Duration::from_secs(1), 1);
        net.set_timer(a, Duration::from_secs(5), 2);
        let evs = net.drain_until(SimTime::from_secs(2));
        assert_eq!(evs.len(), 1);
        assert_eq!(net.now(), SimTime::from_secs(2));
        assert!(net.has_pending_events());
    }

    #[test]
    fn capture_filter_rejects_at_capture_time() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        net.set_capture(true);
        // Keep only UDP frames; TCP signaling never enters the ring.
        net.set_capture_filter(Box::new(|_, d| d.transport == Transport::Udp));
        let dst = Addr::from_ip(net.ip(b), 80);
        net.send(a, 1, dst, Transport::Tcp, Bytes::from_static(b"http"));
        net.send(a, 1, dst, Transport::Udp, Bytes::from_static(b"media"));
        assert_eq!(net.capture().len(), 1);
        assert_eq!(net.capture()[0].transport, Transport::Udp);
        assert_eq!(net.capture_filtered(), 1);
        net.clear_capture_filter();
        net.send(a, 1, dst, Transport::Tcp, Bytes::from_static(b"http"));
        assert_eq!(net.capture().len(), 2);
    }

    #[test]
    fn capture_ring_drops_when_full() {
        let mut net = Network::new(1);
        let (a, b) = two_public_hosts(&mut net);
        net.set_capture(true);
        net.set_capture_limit(3);
        let dst = Addr::from_ip(net.ip(b), 80);
        for _ in 0..5 {
            net.send(a, 1, dst, Transport::Tcp, Bytes::from_static(b"x"));
        }
        assert_eq!(net.capture().len(), 3);
        assert_eq!(net.capture_dropped(), 2);
        net.clear_capture();
        assert_eq!(net.capture_dropped(), 0);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut net = Network::new(1);
        let (a, _) = two_public_hosts(&mut net);
        let keep = net.set_timer(a, Duration::from_secs(1), 1);
        let cancel = net.set_timer(a, Duration::from_secs(2), 2);
        assert!(net.cancel_timer(cancel));
        assert!(!net.cancel_timer(cancel), "handle is stale after cancel");
        let fired: Vec<u64> = std::iter::from_fn(|| net.step())
            .map(|(_, ev)| match ev {
                Event::Timer { token, .. } => token,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(fired, vec![1]);
        assert!(!net.cancel_timer(keep), "fired handle is stale too");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let (a, b) = two_public_hosts(&mut net);
            let dst = Addr::from_ip(net.ip(b), 80);
            let mut times = Vec::new();
            for _ in 0..20 {
                if let SendOutcome::Sent { deliver_at } =
                    net.send(a, 1, dst, Transport::Udp, Bytes::from(vec![0u8; 1200]))
                {
                    times.push(deliver_at.as_nanos());
                }
            }
            times
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// A burst must be indistinguishable from the equivalent sequence of
    /// individual sends: same outcomes, byte-identical capture ring, and
    /// byte-identical delivered datagrams (the route cache and hoisted tap
    /// check are pure bookkeeping).
    #[test]
    fn burst_delivery_is_byte_identical_to_sequential_sends() {
        let build = |seed| {
            let mut net = Network::new(seed);
            let geo = GeoInfo::new("US", 1, "AS1");
            let server = net.add_public_host(geo.clone(), LinkSpec::datacenter());
            let nat = net.add_nat(NatKind::PortRestrictedCone, &geo);
            let client = net.add_host_behind(nat, geo, LinkSpec::residential());
            net.set_capture(true);
            let dst = Addr::from_ip(net.ip(server), 443);
            (net, client, dst)
        };
        let frames: Vec<Bytes> = (0..6u8)
            .map(|i| Bytes::from(vec![i; 50 + usize::from(i) * 400]))
            .collect();

        let (mut seq_net, client, dst) = build(123);
        let seq_outcomes: Vec<SendOutcome> = frames
            .iter()
            .map(|f| seq_net.send(client, 4000, dst, Transport::Udp, f.clone()))
            .collect();

        let (mut burst_net, client2, dst2) = build(123);
        let burst_outcomes = burst_net.send_burst(client2, 4000, dst2, Transport::Udp, frames);

        assert_eq!(seq_outcomes, burst_outcomes);

        let snapshot = |frames: &[CapturedFrame]| {
            frames
                .iter()
                .map(|f| (f.at, f.src, f.dst, f.transport, f.payload.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            snapshot(seq_net.capture()),
            snapshot(burst_net.capture()),
            "capture rings must match byte for byte"
        );

        // The sequential net delivers N packets; the burst net must
        // deliver the *same* datagrams as one Event::Burst scheduled at
        // the last sequential delivery time (receive-side aggregation).
        let mut seq_deliveries = Vec::new();
        while let Some((at, ev)) = seq_net.step() {
            match ev {
                Event::Packet { to, dgram } => seq_deliveries.push((at, to, dgram)),
                other => panic!("unexpected sequential event: {other:?}"),
            }
        }
        assert!(
            seq_deliveries.len() >= 2,
            "seed must deliver enough frames to form a burst"
        );
        let (at, ev) = burst_net.step().expect("the burst arrives as one event");
        match ev {
            Event::Burst { to, dgrams } => {
                let (last_at, seq_to, _) = *seq_deliveries.last().expect("non-empty");
                assert_eq!(at, last_at, "burst lands when its last frame finishes");
                assert_eq!(to, seq_to);
                assert_eq!(dgrams.len(), seq_deliveries.len());
                for ((_, _, sd), bd) in seq_deliveries.iter().zip(&dgrams) {
                    assert_eq!(sd.src, bd.src);
                    assert_eq!(sd.dst, bd.dst);
                    assert_eq!(sd.payload, bd.payload);
                }
            }
            other => panic!("expected a burst event, got {other:?}"),
        }
        assert!(burst_net.step().is_none(), "no further burst-net events");
    }

    #[test]
    fn single_survivor_burst_degrades_to_packet() {
        let mut net = Network::new(7);
        let geo = GeoInfo::new("US", 1, "AS1");
        let a = net.add_public_host(geo.clone(), LinkSpec::datacenter());
        let b = net.add_public_host(geo, LinkSpec::datacenter());
        let dst = Addr::from_ip(net.ip(b), 443);
        let outcomes = net.send_burst(
            a,
            4000,
            dst,
            Transport::Udp,
            vec![Bytes::from_static(b"one")],
        );
        assert!(matches!(outcomes[0], SendOutcome::Sent { .. }));
        let (_, ev) = net.step().expect("delivered");
        assert!(
            matches!(ev, Event::Packet { .. }),
            "a lone frame arrives as a plain packet, not a burst"
        );
    }
}

//! Open-loop arrival processes on virtual time.
//!
//! Closed-loop trials (spawn N viewers, run to a deadline) measure the
//! *simulator*; a serving story needs clients that arrive on their own
//! clock regardless of how the server is doing. [`PoissonArrivals`] draws
//! a nonhomogeneous Poisson process over [`SimTime`] by thinning: draw
//! candidate gaps at the plan's peak rate, accept each candidate with
//! probability `rate(t) / peak`. Every draw flows through [`SimRng`], so
//! an arrival stream is a pure function of `(plan, seed)` — reruns are
//! byte-identical.
//!
//! [`RatePlan`] covers the serving scenarios of the paper's PDN
//! providers: steady load, the diurnal wave of a live audience, a flash
//! crowd (breaking-news spike), and a regional failover (a sibling
//! tracker's audience dumped onto this one mid-run).

use std::time::Duration;

use crate::rng::SimRng;
use crate::time::SimTime;

/// A deterministic arrival-rate schedule (arrivals per virtual second).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RatePlan {
    /// Constant rate.
    Steady {
        /// Arrivals per second.
        per_sec: f64,
    },
    /// A raised-cosine day curve: `base` at the trough, `peak` at the
    /// crest, one full cycle every `period`.
    Diurnal {
        /// Trough rate.
        base_per_sec: f64,
        /// Crest rate.
        peak_per_sec: f64,
        /// Cycle length.
        period: Duration,
    },
    /// Steady `base`, multiplied by `mult` inside `[at, at + dur)` — the
    /// flash-crowd spike.
    FlashCrowd {
        /// Baseline rate.
        base_per_sec: f64,
        /// Spike multiplier (≥ 1).
        mult: f64,
        /// Spike onset.
        at: SimTime,
        /// Spike duration.
        dur: Duration,
    },
    /// Steady `base` until `at`, then `base · mult` for the rest of the
    /// run: a sibling region's tracker died and its audience failed over
    /// here, permanently (for this run).
    Failover {
        /// Baseline rate.
        base_per_sec: f64,
        /// Post-failover multiplier (≥ 1).
        mult: f64,
        /// Failover instant.
        at: SimTime,
    },
}

impl RatePlan {
    /// The instantaneous rate at `t` (arrivals per second).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match *self {
            RatePlan::Steady { per_sec } => per_sec,
            RatePlan::Diurnal {
                base_per_sec,
                peak_per_sec,
                period,
            } => {
                let phase = t.as_secs_f64() / period.as_secs_f64().max(1e-9);
                let wave = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                base_per_sec + (peak_per_sec - base_per_sec) * wave
            }
            RatePlan::FlashCrowd {
                base_per_sec,
                mult,
                at,
                dur,
            } => {
                if t >= at && t < at + dur {
                    base_per_sec * mult
                } else {
                    base_per_sec
                }
            }
            RatePlan::Failover {
                base_per_sec,
                mult,
                at,
            } => {
                if t >= at {
                    base_per_sec * mult
                } else {
                    base_per_sec
                }
            }
        }
    }

    /// The supremum of [`RatePlan::rate_at`] — the thinning envelope.
    pub fn peak(&self) -> f64 {
        match *self {
            RatePlan::Steady { per_sec } => per_sec,
            RatePlan::Diurnal {
                base_per_sec,
                peak_per_sec,
                ..
            } => base_per_sec.max(peak_per_sec),
            RatePlan::FlashCrowd {
                base_per_sec, mult, ..
            } => base_per_sec * mult.max(1.0),
            RatePlan::Failover {
                base_per_sec, mult, ..
            } => base_per_sec * mult.max(1.0),
        }
    }

    /// Scales every rate in the plan by `factor` (the load-sweep knob).
    pub fn scaled(&self, factor: f64) -> RatePlan {
        let mut plan = self.clone();
        match &mut plan {
            RatePlan::Steady { per_sec } => *per_sec *= factor,
            RatePlan::Diurnal {
                base_per_sec,
                peak_per_sec,
                ..
            } => {
                *base_per_sec *= factor;
                *peak_per_sec *= factor;
            }
            RatePlan::FlashCrowd { base_per_sec, .. } => *base_per_sec *= factor,
            RatePlan::Failover { base_per_sec, .. } => *base_per_sec *= factor,
        }
        plan
    }
}

/// A deterministic nonhomogeneous Poisson arrival stream. See the
/// [module docs](self).
///
/// # Examples
///
/// ```
/// use pdn_simnet::{PoissonArrivals, RatePlan, SimTime};
///
/// let plan = RatePlan::Steady { per_sec: 100.0 };
/// let mut a = PoissonArrivals::new(plan.clone(), 7);
/// let mut b = PoissonArrivals::new(plan, 7);
/// assert_eq!(a.next_arrival(), b.next_arrival());
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    plan: RatePlan,
    rng: SimRng,
    at: SimTime,
}

impl PoissonArrivals {
    /// Creates a stream for `plan`, deterministically seeded.
    pub fn new(plan: RatePlan, seed: u64) -> Self {
        PoissonArrivals {
            plan,
            rng: SimRng::seed(seed ^ 0x0a55_0a55),
            at: SimTime::ZERO,
        }
    }

    /// The rate plan driving this stream.
    pub fn plan(&self) -> &RatePlan {
        &self.plan
    }

    /// The time of the most recently returned arrival.
    pub fn now(&self) -> SimTime {
        self.at
    }

    /// Advances to and returns the next arrival instant (strictly after
    /// the previous one).
    pub fn next_arrival(&mut self) -> SimTime {
        let peak = self.plan.peak().max(1e-9);
        loop {
            let gap = self.rng.exp(1.0 / peak).max(1e-12);
            self.at += Duration::from_secs_f64(gap);
            let accept = self.plan.rate_at(self.at) / peak;
            if self.rng.chance(accept) {
                return self.at;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(arrivals: &[SimTime], from: SimTime, to: SimTime) -> usize {
        arrivals.iter().filter(|&&t| t >= from && t < to).count()
    }

    fn draw(plan: RatePlan, seed: u64, until: SimTime) -> Vec<SimTime> {
        let mut p = PoissonArrivals::new(plan, seed);
        let mut out = Vec::new();
        loop {
            let t = p.next_arrival();
            if t >= until {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let plan = RatePlan::Diurnal {
            base_per_sec: 10.0,
            peak_per_sec: 100.0,
            period: Duration::from_secs(60),
        };
        let a = draw(plan.clone(), 3, SimTime::from_secs(120));
        let b = draw(plan.clone(), 3, SimTime::from_secs(120));
        let c = draw(plan, 4, SimTime::from_secs(120));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn steady_rate_is_roughly_right() {
        let got = draw(
            RatePlan::Steady { per_sec: 200.0 },
            9,
            SimTime::from_secs(50),
        );
        let rate = got.len() as f64 / 50.0;
        assert!((150.0..250.0).contains(&rate), "observed {rate}/s");
    }

    #[test]
    fn flash_crowd_spikes_inside_the_window() {
        let plan = RatePlan::FlashCrowd {
            base_per_sec: 50.0,
            mult: 10.0,
            at: SimTime::from_secs(30),
            dur: Duration::from_secs(10),
        };
        let got = draw(plan, 11, SimTime::from_secs(60));
        let before = count_in(&got, SimTime::from_secs(10), SimTime::from_secs(20));
        let during = count_in(&got, SimTime::from_secs(30), SimTime::from_secs(40));
        assert!(
            during as f64 > before as f64 * 5.0,
            "spike {during} vs base {before}"
        );
    }

    #[test]
    fn failover_steps_up_and_stays_up() {
        let plan = RatePlan::Failover {
            base_per_sec: 40.0,
            mult: 3.0,
            at: SimTime::from_secs(20),
        };
        let got = draw(plan, 13, SimTime::from_secs(60));
        let before = count_in(&got, SimTime::ZERO, SimTime::from_secs(20));
        let after = count_in(&got, SimTime::from_secs(40), SimTime::from_secs(60));
        assert!(
            after as f64 > before as f64 * 2.0,
            "failover {after} vs base {before}"
        );
    }

    #[test]
    fn scaled_scales_the_envelope() {
        let plan = RatePlan::Steady { per_sec: 10.0 };
        assert_eq!(plan.scaled(3.0).peak(), 30.0);
        let d = RatePlan::Diurnal {
            base_per_sec: 1.0,
            peak_per_sec: 5.0,
            period: Duration::from_secs(10),
        };
        assert_eq!(d.scaled(2.0).peak(), 10.0);
    }
}

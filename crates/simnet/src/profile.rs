//! Lightweight per-phase wall-clock profiler for the simulation hot loop.
//!
//! The bench harness needs `workload_serial_ms` to be *attributable*: how
//! much of the pooled workload is agent tick work vs signaling vs P2P
//! delivery vs crypto vs frame capture. A sampling profiler is unavailable
//! in the container, so the hot loops mark themselves with [`phase`] guards.
//!
//! Disabled (the default), a guard is one relaxed atomic load and no clock
//! read — cheap enough to leave compiled into release builds. Enabled (via
//! `sim_bench --profile`), each guard reads a monotonic clock on entry and
//! drop, accumulating nanoseconds and entry counts.
//!
//! **Shard safety.** Accumulation is thread-local: each guard drop adds to
//! plain `Cell` counters owned by its thread, so concurrent shard workers
//! never contend on shared cache lines and per-guard cost stays flat as
//! worker count grows (keeping `probe_cost_ns` calibration valid under
//! sharding). Worker totals merge into the global counters via
//! [`flush_thread_local`], which the shard runner calls as each worker's
//! last act before the barrier join — `std::thread::scope` releases the
//! joiner when the closure *returns*, which can be before the thread's
//! TLS destructors run, so only an explicit in-closure flush is
//! guaranteed visible to the coordinator. (Thread exit still flushes as a
//! backstop for plain spawned threads.) Merging is pure addition of
//! disjoint per-thread sums, hence deterministic regardless of worker
//! scheduling. [`snapshot`] also folds in the calling thread's pending
//! counts, so single-threaded callers see their totals immediately.
//!
//! Phases may nest (crypto work happens inside tick and P2P handling); the
//! report therefore states self-inclusive times per phase, and `Crypto` in
//! particular overlaps its callers rather than partitioning them.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Hot-loop phases tracked by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Agent timer ticks (scheduling, cache maintenance, request pumps).
    Tick,
    /// Signaling server frame handling.
    Signal,
    /// Peer-to-peer datagram handling in agents.
    P2p,
    /// CDN/HTTP request + response handling.
    Http,
    /// DTLS sealing/opening and HMAC work (nested inside Tick/P2p).
    Crypto,
    /// Packet capture ring writes.
    Capture,
}

/// Number of phases (array sizing).
pub const PHASE_COUNT: usize = 6;

/// Phase order used by [`snapshot`] and reports.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Tick,
    Phase::Signal,
    Phase::P2p,
    Phase::Http,
    Phase::Crypto,
    Phase::Capture,
];

impl Phase {
    /// Stable lowercase label (used as JSON key suffix).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Tick => "tick",
            Phase::Signal => "signal",
            Phase::P2p => "p2p",
            Phase::Http => "http",
            Phase::Crypto => "crypto",
            Phase::Capture => "capture",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            Phase::Tick => 0,
            Phase::Signal => 1,
            Phase::P2p => 2,
            Phase::Http => 3,
            Phase::Crypto => 4,
            Phase::Capture => 5,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Merge target: sums of all exited (or flushed) threads' counters.
static NANOS: [AtomicU64; PHASE_COUNT] = [ZERO; PHASE_COUNT];
static COUNTS: [AtomicU64; PHASE_COUNT] = [ZERO; PHASE_COUNT];

/// Per-thread accumulators. Guard drops touch only these; shard workers
/// merge them into the globals with an explicit [`flush_thread_local`]
/// before the barrier, and the `Drop` impl flushes at thread exit as a
/// backstop for ordinary spawned threads.
struct LocalCells {
    nanos: [Cell<u64>; PHASE_COUNT],
    counts: [Cell<u64>; PHASE_COUNT],
}

impl LocalCells {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const C: Cell<u64> = Cell::new(0);
        LocalCells {
            nanos: [C; PHASE_COUNT],
            counts: [C; PHASE_COUNT],
        }
    }

    /// Moves this thread's pending counts into the globals, zeroing the
    /// cells so a double flush (explicit + thread exit) adds nothing.
    fn flush(&self) {
        for i in 0..PHASE_COUNT {
            let n = self.nanos[i].take();
            if n != 0 {
                NANOS[i].fetch_add(n, Ordering::Relaxed);
            }
            let c = self.counts[i].take();
            if c != 0 {
                COUNTS[i].fetch_add(c, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for LocalCells {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: LocalCells = const { LocalCells::new() };
}

/// Turns phase accounting on or off (global; affects all worlds/threads).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True if phase accounting is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all accumulated counters: the global merge target and the
/// calling thread's pending cells. Other live threads' pending counts are
/// unreachable from here; reset between runs from the coordinating thread
/// while no workers are active.
pub fn reset() {
    for i in 0..PHASE_COUNT {
        NANOS[i].store(0, Ordering::Relaxed);
        COUNTS[i].store(0, Ordering::Relaxed);
    }
    LOCAL.with(|l| {
        for i in 0..PHASE_COUNT {
            l.nanos[i].set(0);
            l.counts[i].set(0);
        }
    });
}

/// Merges the calling thread's pending counts into the global totals.
///
/// Scoped shard workers **must** call this before returning from their
/// closure: `std::thread::scope` unblocks the joiner as soon as the
/// closure returns, without waiting for the worker's TLS destructors, so
/// counts left to the exit-time flush can land after the coordinator has
/// already snapshotted. The shard runner does this for its workers.
pub fn flush_thread_local() {
    LOCAL.with(|l| l.flush());
}

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Which phase.
    pub phase: Phase,
    /// Total wall-clock nanoseconds spent inside guards for this phase.
    pub nanos: u64,
    /// Number of guard entries.
    pub count: u64,
}

/// Snapshot of all phase totals, in [`PHASES`] order. Includes the calling
/// thread's pending counts (flushed first) plus every already-merged
/// worker; workers still running are not visible until they exit or flush.
pub fn snapshot() -> [PhaseTotals; PHASE_COUNT] {
    flush_thread_local();
    PHASES.map(|p| PhaseTotals {
        phase: p,
        nanos: NANOS[p.idx()].load(Ordering::Relaxed),
        count: COUNTS[p.idx()].load(Ordering::Relaxed),
    })
}

/// RAII guard accumulating elapsed time into its phase on drop.
pub struct PhaseGuard {
    start: Option<(Phase, Instant)>,
}

impl Drop for PhaseGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((phase, start)) = self.start {
            let elapsed = start.elapsed().as_nanos() as u64;
            let i = phase.idx();
            LOCAL.with(|l| {
                l.nanos[i].set(l.nanos[i].get() + elapsed);
                l.counts[i].set(l.counts[i].get() + 1);
            });
        }
    }
}

/// Enters `phase` for the lifetime of the returned guard.
///
/// When profiling is disabled this is a single relaxed load and the guard
/// drop is a no-op.
#[inline]
pub fn phase(phase: Phase) -> PhaseGuard {
    if ENABLED.load(Ordering::Relaxed) {
        PhaseGuard {
            start: Some((phase, Instant::now())),
        }
    } else {
        PhaseGuard { start: None }
    }
}

/// Measured cost of one enabled guard entry+drop, in nanoseconds
/// (set by [`calibrate_probe_cost`]; zero until calibrated).
static PROBE_COST_NANOS: AtomicU64 = AtomicU64::new(0);

/// Measures the wall-clock cost of one enabled guard pair (clock read on
/// entry, clock read + two thread-local adds on drop) and stores it for
/// [`probe_cost_nanos`]. Run once before a profiled pass; the result lets
/// reports subtract probe overhead so high-entry cheap phases are not
/// overstated relative to an unprofiled run. Because accumulation is
/// thread-local, the cost measured here holds for every shard worker —
/// there is no cross-thread contention term that grows with worker count.
///
/// Returns the per-entry cost in nanoseconds.
pub fn calibrate_probe_cost() -> u64 {
    let was_enabled = enabled();
    set_enabled(true);
    // Warm the clock and the thread-local cells, then time a tight guard
    // loop. The loop is long enough to dominate the two boundary clock
    // reads.
    for _ in 0..1_000 {
        drop(phase(Phase::Capture));
    }
    const ITERS: u64 = 200_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        drop(phase(Phase::Capture));
    }
    let per_entry = (t0.elapsed().as_nanos() as u64) / ITERS;
    set_enabled(was_enabled);
    PROBE_COST_NANOS.store(per_entry, Ordering::Relaxed);
    per_entry
}

/// Last calibrated per-entry probe cost in nanoseconds (zero if
/// [`calibrate_probe_cost`] has not run).
pub fn probe_cost_nanos() -> u64 {
    PROBE_COST_NANOS.load(Ordering::Relaxed)
}

impl PhaseTotals {
    /// Nanoseconds with the calibrated probe cost removed: measured time
    /// minus `count` probe entries, saturating at zero. Phases with many
    /// cheap entries (P2p dispatch, Capture) otherwise overstate their
    /// share of a profiled run versus the unprofiled wall clock.
    pub fn calibrated_nanos(&self) -> u64 {
        self.nanos
            .saturating_sub(self.count.saturating_mul(probe_cost_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The profiler is global state; serialize the tests that toggle it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_guard_accumulates_nothing() {
        let _l = locked();
        set_enabled(false);
        reset();
        drop(phase(Phase::Tick));
        let snap = snapshot();
        assert_eq!(snap[0].count, 0);
        assert_eq!(snap[0].nanos, 0);
    }

    #[test]
    fn calibration_sets_probe_cost_and_calibrated_nanos_subtracts_it() {
        let _l = locked();
        let cost = calibrate_probe_cost();
        assert_eq!(probe_cost_nanos(), cost);
        let t = PhaseTotals {
            phase: Phase::P2p,
            nanos: 10 * cost.max(1),
            count: 4,
        };
        assert_eq!(
            t.calibrated_nanos(),
            t.nanos.saturating_sub(4 * cost),
            "probe cost is removed per entry"
        );
        let tiny = PhaseTotals {
            phase: Phase::Capture,
            nanos: 1,
            count: u64::MAX / 2,
        };
        assert_eq!(tiny.calibrated_nanos(), 0, "saturates at zero");
        PROBE_COST_NANOS.store(0, Ordering::Relaxed);
    }

    #[test]
    fn enabled_guard_counts_entries() {
        let _l = locked();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _g = phase(Phase::Signal);
        }
        {
            let _outer = phase(Phase::P2p);
            let _inner = phase(Phase::Crypto);
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap[1].count, 3);
        assert_eq!(snap[2].count, 1);
        assert_eq!(snap[4].count, 1);
        assert_eq!(snap[1].phase.label(), "signal");
    }

    #[test]
    fn worker_thread_counts_merge_at_join() {
        let _l = locked();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..5 {
                        drop(phase(Phase::Tick));
                    }
                    // The barrier contract: flush before returning. The
                    // scope join does NOT wait for TLS destructors, so an
                    // exit-time flush can race the coordinator's snapshot.
                    flush_thread_local();
                });
            }
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap[0].count, 10, "both workers' entries merged at join");
        reset();
    }

    #[test]
    fn explicit_flush_makes_pending_counts_visible() {
        let _l = locked();
        set_enabled(true);
        reset();
        drop(phase(Phase::Http));
        flush_thread_local();
        flush_thread_local(); // idempotent: cells were taken
        let n = COUNTS[Phase::Http.idx()].load(Ordering::Relaxed);
        set_enabled(false);
        assert_eq!(n, 1);
        reset();
    }
}

//! Geolocation of simulated hosts and an IPinfo-like lookup service.
//!
//! The paper geolocates harvested viewer IPs through IPinfo (§IV-D) to
//! report country/city distributions, and its privacy mitigation (§V-C)
//! matches candidate peers by country or ISP. [`GeoIpService`] plays the
//! IPinfo role over the simulator's synthetic address plan: each country is
//! assigned IP blocks, and lookups recover the registration.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::addr::IpClass;
use crate::rng::SimRng;

/// ISO-3166-ish country code (e.g. `"US"`, `"CN"`).
pub type CountryCode = &'static str;

/// Continent groups used for the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Continent {
    /// North + South America.
    America,
    /// Europe (incl. Russia west).
    Europe,
    /// Asia-Pacific.
    Asia,
    /// Everything else / unknown.
    Other,
}

/// Maps a country code to its continent group.
pub fn continent_of(country: &str) -> Continent {
    match country {
        "US" | "CA" | "BR" | "AR" | "MX" | "CL" | "CO" | "PE" => Continent::America,
        "GB" | "FR" | "DE" | "ES" | "PT" | "IT" | "NL" | "RU" | "PL" | "AT" | "CH" | "SE" => {
            Continent::Europe
        }
        "CN" | "JP" | "KR" | "IN" | "BD" | "ID" | "VN" | "TH" | "MM" | "PK" | "PH" | "AU" => {
            Continent::Asia
        }
        _ => Continent::Other,
    }
}

/// Geographic + network registration of a host.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct GeoInfo {
    /// Country code, e.g. `"CN"`.
    pub country: String,
    /// City index within the country (synthetic; distinct values model
    /// distinct cities for the "259 cities" style statistics).
    pub city: u16,
    /// Autonomous-system-like ISP label, e.g. `"AS4134"`.
    pub isp: String,
}

impl GeoInfo {
    /// Creates a registration.
    pub fn new(country: &str, city: u16, isp: &str) -> Self {
        GeoInfo {
            country: country.to_string(),
            city,
            isp: isp.to_string(),
        }
    }
}

/// A synthetic regional internet registry: allocates public IPv4 space per
/// (country, ISP) and answers reverse lookups, like IPinfo in the paper.
#[derive(Debug, Default)]
pub struct GeoIpService {
    // /16 prefix (upper 16 bits of the IP) -> registration
    blocks: HashMap<u16, GeoInfo>,
    next_block: u16,
    // per-block next host counter
    next_host: HashMap<u16, u16>,
}

impl GeoIpService {
    /// Creates an empty registry.
    pub fn new() -> Self {
        GeoIpService {
            blocks: HashMap::new(),
            // Start in clearly-public space: 11.0.0.0/8 upward.
            next_block: 11 << 8,
            next_host: HashMap::new(),
        }
    }

    /// Allocates a fresh public IP registered to `geo`.
    ///
    /// Addresses within the same (country, ISP, city) tend to share blocks,
    /// which keeps the synthetic address plan realistic for /16-granularity
    /// geolocation.
    pub fn allocate(&mut self, geo: &GeoInfo) -> Ipv4Addr {
        // Find an existing block with the same registration that still has room.
        let existing = self
            .blocks
            .iter()
            .find(|(prefix, g)| {
                **g == *geo && self.next_host.get(prefix).copied().unwrap_or(1) < u16::MAX
            })
            .map(|(p, _)| *p);
        let prefix = existing.unwrap_or_else(|| {
            let p = self.fresh_prefix();
            self.blocks.insert(p, geo.clone());
            p
        });
        let host = self.next_host.entry(prefix).or_insert(1);
        let ip = Ipv4Addr::new(
            (prefix >> 8) as u8,
            (prefix & 0xff) as u8,
            (*host >> 8) as u8,
            (*host & 0xff) as u8,
        );
        *host += 1;
        debug_assert_eq!(IpClass::of(ip), IpClass::Public, "allocated bogon {ip}");
        ip
    }

    fn fresh_prefix(&mut self) -> u16 {
        loop {
            let p = self.next_block;
            self.next_block = self.next_block.wrapping_add(1);
            let probe = Ipv4Addr::new((p >> 8) as u8, (p & 0xff) as u8, 0, 1);
            if IpClass::of(probe) == IpClass::Public && !self.blocks.contains_key(&p) {
                return p;
            }
        }
    }

    /// Looks up the registration of `ip` (the IPinfo query of §IV-D).
    ///
    /// Returns `None` for bogons and for public space this registry never
    /// allocated.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&GeoInfo> {
        if IpClass::of(ip).is_bogon() {
            return None;
        }
        let [a, b, _, _] = ip.octets();
        self.blocks.get(&(((a as u16) << 8) | b as u16))
    }

    /// Number of distinct allocated blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// A weighted country mix for generating viewer populations.
///
/// # Examples
///
/// ```
/// use pdn_simnet::{CountryMix, SimRng};
///
/// // RT News-style audience (§IV-D): US 35%, GB 17%, CA 13%, the rest spread.
/// let mix = CountryMix::new(vec![("US", 0.35), ("GB", 0.17), ("CA", 0.13), ("DE", 0.35)]);
/// let mut rng = SimRng::seed(1);
/// let c = mix.sample(&mut rng);
/// assert!(["US", "GB", "CA", "DE"].contains(&c));
/// ```
#[derive(Debug, Clone)]
pub struct CountryMix {
    entries: Vec<(CountryCode, f64)>,
}

impl CountryMix {
    /// Creates a mix from `(country, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are non-positive.
    pub fn new(entries: Vec<(CountryCode, f64)>) -> Self {
        assert!(
            entries.iter().any(|(_, w)| *w > 0.0),
            "country mix must have at least one positive weight"
        );
        CountryMix { entries }
    }

    /// A single-country mix.
    pub fn single(country: CountryCode) -> Self {
        CountryMix {
            entries: vec![(country, 1.0)],
        }
    }

    /// Samples a country.
    pub fn sample(&self, rng: &mut SimRng) -> CountryCode {
        let weights: Vec<f64> = self.entries.iter().map(|(_, w)| *w).collect();
        let idx = rng
            .choose_weighted(&weights)
            .expect("mix validated non-empty");
        self.entries[idx].0
    }

    /// The countries in this mix.
    pub fn countries(&self) -> impl Iterator<Item = CountryCode> + '_ {
        self.entries.iter().map(|(c, _)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_lookup() {
        let mut svc = GeoIpService::new();
        let geo = GeoInfo::new("CN", 1, "AS4134");
        let ip = svc.allocate(&geo);
        assert_eq!(svc.lookup(ip), Some(&geo));
    }

    #[test]
    fn same_registration_shares_block() {
        let mut svc = GeoIpService::new();
        let geo = GeoInfo::new("US", 3, "AS7922");
        let a = svc.allocate(&geo);
        let b = svc.allocate(&geo);
        assert_eq!(a.octets()[..2], b.octets()[..2]);
        assert_ne!(a, b);
    }

    #[test]
    fn different_registrations_get_different_blocks() {
        let mut svc = GeoIpService::new();
        let a = svc.allocate(&GeoInfo::new("US", 1, "AS1"));
        let b = svc.allocate(&GeoInfo::new("CN", 1, "AS2"));
        assert_ne!(a.octets()[..2], b.octets()[..2]);
        assert_eq!(svc.block_count(), 2);
    }

    #[test]
    fn bogons_do_not_resolve() {
        let svc = GeoIpService::new();
        assert!(svc.lookup(Ipv4Addr::new(192, 168, 1, 1)).is_none());
        assert!(svc.lookup(Ipv4Addr::new(100, 64, 0, 1)).is_none());
    }

    #[test]
    fn unallocated_public_space_does_not_resolve() {
        let svc = GeoIpService::new();
        assert!(svc.lookup(Ipv4Addr::new(93, 184, 216, 34)).is_none());
    }

    #[test]
    fn country_mix_distribution_roughly_matches() {
        let mix = CountryMix::new(vec![("CN", 0.98), ("US", 0.02)]);
        let mut rng = SimRng::seed(5);
        let n = 10_000;
        let cn = (0..n).filter(|_| mix.sample(&mut rng) == "CN").count();
        let frac = cn as f64 / n as f64;
        assert!(frac > 0.96 && frac < 1.0, "CN fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_mix_panics() {
        CountryMix::new(vec![]);
    }

    #[test]
    fn continents() {
        assert_eq!(continent_of("US"), Continent::America);
        assert_eq!(continent_of("CN"), Continent::Asia);
        assert_eq!(continent_of("GB"), Continent::Europe);
        assert_eq!(continent_of("ZZ"), Continent::Other);
    }
}

//! Network addresses and bogon classification.
//!
//! The paper's IP-leak field study (§IV-D) classifies harvested addresses
//! into public IPs and *bogons* — private (RFC 1918), carrier-grade NAT
//! (RFC 6598), and reserved ranges — which appear when NAT traversal
//! replies with unreachable candidates. [`IpClass`] reproduces that
//! taxonomy.

use std::net::Ipv4Addr;

/// A transport address: IPv4 address plus UDP/TCP port.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Addr {
    /// The IPv4 address.
    pub ip: Ipv4Addr,
    /// The port number.
    pub port: u16,
}

impl Addr {
    /// Creates an address from octets and a port.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        Addr {
            ip: Ipv4Addr::new(a, b, c, d),
            port,
        }
    }

    /// Creates an address from an [`Ipv4Addr`] and a port.
    pub const fn from_ip(ip: Ipv4Addr, port: u16) -> Self {
        Addr { ip, port }
    }

    /// The same IP with a different port.
    pub const fn with_port(self, port: u16) -> Self {
        Addr { ip: self.ip, port }
    }

    /// Classification of this address's IP.
    pub fn class(self) -> IpClass {
        IpClass::of(self.ip)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Classification of an IPv4 address, following the paper's bogon taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IpClass {
    /// Globally routable.
    Public,
    /// RFC 1918 private space (10/8, 172.16/12, 192.168/16).
    Private,
    /// RFC 6598 shared address space for carrier-grade NAT (100.64/10).
    CgNat,
    /// Loopback, link-local, documentation, multicast, class E, 0/8.
    Reserved,
}

impl IpClass {
    /// Classifies `ip`.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::net::Ipv4Addr;
    /// use pdn_simnet::IpClass;
    ///
    /// assert_eq!(IpClass::of(Ipv4Addr::new(8, 8, 8, 8)), IpClass::Public);
    /// assert_eq!(IpClass::of(Ipv4Addr::new(192, 168, 1, 2)), IpClass::Private);
    /// assert_eq!(IpClass::of(Ipv4Addr::new(100, 64, 0, 1)), IpClass::CgNat);
    /// ```
    pub fn of(ip: Ipv4Addr) -> IpClass {
        let [a, b, _, _] = ip.octets();
        if ip.is_private() {
            IpClass::Private
        } else if a == 100 && (64..128).contains(&b) {
            IpClass::CgNat
        } else if ip.is_loopback()
            || ip.is_link_local()
            || ip.is_broadcast()
            || ip.is_documentation()
            || ip.is_multicast()
            || a == 0
            || a >= 240
        {
            IpClass::Reserved
        } else {
            IpClass::Public
        }
    }

    /// Whether this class is a bogon (anything non-public).
    pub fn is_bogon(self) -> bool {
        self != IpClass::Public
    }
}

impl std::fmt::Display for IpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IpClass::Public => "public",
            IpClass::Private => "private",
            IpClass::CgNat => "nat",
            IpClass::Reserved => "reserved",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Addr::new(1, 2, 3, 4, 443).to_string(), "1.2.3.4:443");
    }

    #[test]
    fn classification_private() {
        for ip in [
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(172, 31, 255, 255),
            Ipv4Addr::new(192, 168, 0, 1),
        ] {
            assert_eq!(IpClass::of(ip), IpClass::Private, "{ip}");
        }
        // Near-misses are public.
        assert_eq!(IpClass::of(Ipv4Addr::new(172, 32, 0, 1)), IpClass::Public);
        assert_eq!(IpClass::of(Ipv4Addr::new(192, 169, 0, 1)), IpClass::Public);
    }

    #[test]
    fn classification_cgnat() {
        assert_eq!(IpClass::of(Ipv4Addr::new(100, 64, 0, 0)), IpClass::CgNat);
        assert_eq!(
            IpClass::of(Ipv4Addr::new(100, 127, 255, 255)),
            IpClass::CgNat
        );
        assert_eq!(IpClass::of(Ipv4Addr::new(100, 63, 0, 1)), IpClass::Public);
        assert_eq!(IpClass::of(Ipv4Addr::new(100, 128, 0, 1)), IpClass::Public);
    }

    #[test]
    fn classification_reserved() {
        for ip in [
            Ipv4Addr::new(127, 0, 0, 1),
            Ipv4Addr::new(169, 254, 1, 1),
            Ipv4Addr::new(0, 1, 2, 3),
            Ipv4Addr::new(224, 0, 0, 1),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(240, 0, 0, 1),
        ] {
            assert!(IpClass::of(ip).is_bogon(), "{ip}");
        }
    }

    #[test]
    fn public_is_not_bogon() {
        assert!(!IpClass::of(Ipv4Addr::new(93, 184, 216, 34)).is_bogon());
    }

    #[test]
    fn with_port() {
        let a = Addr::new(1, 1, 1, 1, 80);
        assert_eq!(a.with_port(8080), Addr::new(1, 1, 1, 1, 8080));
    }
}

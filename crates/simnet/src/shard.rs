//! Conservative parallel discrete-event execution across spatial shards.
//!
//! `WorldPool` parallelizes across *independent* worlds; this module
//! parallelizes *inside* one world. The world is partitioned into K
//! spatial shards, each owning a subset of agents and their calendar
//! queue ([`crate::CalendarQueue`]). Shards advance in lockstep through
//! **lookahead windows**: with L = the minimum latency of any cross-shard
//! link, every message a shard emits during window `[start, start+L)`
//! carries an arrival stamp `>= start + L` — at or past the window end —
//! so shards can drain their local queues through the window in parallel
//! without ever receiving an event from the past. At the window barrier
//! the coordinator exchanges the accumulated cross-shard batches and opens
//! the next window at the earliest pending event.
//!
//! **Determinism contract.** The runner produces byte-identical world
//! state at any shard-worker interleaving, provided the [`ShardWorld`]
//! implementation holds up its side:
//!
//! - outboxes are merged in *source shard index order* (like `WorldPool`'s
//!   index-ordered merge), never completion order;
//! - delivered messages enter the destination queue under a tie-break key
//!   derived from message content ([`crate::CalendarQueue::push_keyed`]),
//!   so pop order is independent of which window or batch position the
//!   message arrived in;
//! - any randomness is keyed by content (origin id, per-origin counter),
//!   never by global draw order.
//!
//! Under those rules K=1 with an inline loop and K=8 on worker threads
//! drain the exact same event sequence per shard, which
//! `tests/shard_determinism.rs` pins down byte-for-byte.
//!
//! The runner enforces the lookahead invariant at every barrier: a
//! message stamped before the window end is a hard error (it would have to
//! be delivered into a window that already ran), which the proptests lean
//! on with randomized latency configurations.

use std::sync::OnceLock;
use std::time::Duration;

use crate::time::SimTime;

/// The host's available parallelism, probed once. Spawning scoped threads
/// on a 1-core host only adds spawn/join and cache-handoff overhead (the
/// measured 0.91x of BENCH_sim.json), so both `WorldPool` and the shard
/// runner collapse to inline execution there.
pub fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// One spatial shard of a partitioned world.
///
/// The shard owns its agents and calendar queue. `run_window` drains
/// local events strictly before `end`, pushing any message addressed to
/// another shard into `outbox` instead of delivering it; `deliver`
/// schedules an incoming cross-shard message into the local queue (keyed
/// by content so arrival order is irrelevant).
pub trait ShardWorld {
    /// A cross-shard message. Carries its own arrival stamp.
    type Msg: Send;

    /// Time of the earliest pending local event, if any.
    fn next_at(&self) -> Option<SimTime>;

    /// Drains every local event scheduled strictly before `end`.
    /// Messages bound for other shards are appended to `outbox` as
    /// `(destination_shard, message)`; the runner exchanges them at the
    /// barrier. Events the shard schedules for itself go straight into
    /// its own queue.
    fn run_window(&mut self, end: SimTime, outbox: &mut Vec<(usize, Self::Msg)>);

    /// Schedules an incoming cross-shard message locally.
    fn deliver(&mut self, msg: Self::Msg);

    /// Arrival stamp of a message (used for the lookahead check).
    fn stamp(msg: &Self::Msg) -> SimTime;
}

/// How [`run_sharded`] maps shards onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Threaded when the host has ≥ 2 cores and there are ≥ 2 shards,
    /// inline otherwise — the honest default for benches.
    Auto,
    /// Always run shards sequentially on the calling thread.
    Inline,
    /// Always spawn scoped worker threads, even on a 1-core host — the
    /// determinism tests use this to compare both paths everywhere.
    Threaded,
}

/// What a [`run_sharded`] call did, for bench reporting and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Number of lookahead windows executed.
    pub windows: u64,
    /// Cross-shard messages exchanged at barriers.
    pub exchanged: u64,
    /// Shard count the world was partitioned into.
    pub shards: usize,
    /// Execution path actually taken: `"inline"` or `"threaded"`.
    /// Recorded in BENCH_swarm.json so speedup gates can skip honestly on
    /// hosts where the threaded path never runs.
    pub mode: &'static str,
}

/// Runs `shards` to quiescence at `deadline`: every event stamped at or
/// before `deadline` is processed, on every shard, at any shard count,
/// in an order byte-equivalent to the serial K=1 loop.
///
/// `lookahead` must be at most the minimum cross-shard link latency of
/// the world (it is clamped to ≥ 1 ns so a degenerate configuration makes
/// progress one nanosecond at a time instead of spinning).
///
/// # Panics
///
/// Panics if any shard emits a cross-shard message stamped before the end
/// of the window that produced it (a lookahead violation — the
/// configuration lied about its minimum cross-shard latency), or if a
/// message addresses a shard index out of range.
pub fn run_sharded<W: ShardWorld + Send>(
    shards: &mut [W],
    lookahead: Duration,
    deadline: SimTime,
    mode: ShardMode,
) -> ShardRunReport {
    let k = shards.len();
    let threaded = match mode {
        ShardMode::Inline => false,
        ShardMode::Threaded => k > 1,
        ShardMode::Auto => k > 1 && host_parallelism() >= 2,
    };
    let lookahead_ns = (lookahead.as_nanos() as u64).max(1);
    // `pop_before` is exclusive, so the final window must end one
    // nanosecond past the deadline to include events stamped exactly on it.
    let cutoff = SimTime::from_nanos(deadline.as_nanos().saturating_add(1));

    let mut outboxes: Vec<Vec<(usize, W::Msg)>> = (0..k).map(|_| Vec::new()).collect();
    let mut report = ShardRunReport {
        windows: 0,
        exchanged: 0,
        shards: k,
        mode: if threaded { "threaded" } else { "inline" },
    };

    while let Some(start) = shards.iter().filter_map(|s| s.next_at()).min() {
        if start > deadline {
            break;
        }
        let end = SimTime::from_nanos(
            start
                .as_nanos()
                .saturating_add(lookahead_ns)
                .min(cutoff.as_nanos()),
        );
        report.windows += 1;

        if threaded {
            std::thread::scope(|scope| {
                for (shard, outbox) in shards.iter_mut().zip(outboxes.iter_mut()) {
                    scope.spawn(move || {
                        shard.run_window(end, outbox);
                        // Merge this worker's profiler counts before the
                        // join: the scope unblocks on closure return,
                        // without waiting for TLS destructors.
                        crate::profile::flush_thread_local();
                    });
                }
            });
        } else {
            for (shard, outbox) in shards.iter_mut().zip(outboxes.iter_mut()) {
                shard.run_window(end, outbox);
            }
        }

        // Barrier: exchange batches in source shard index order. Pop
        // order at the destination is fixed by content-derived keys, so
        // this ordering only needs to be *some* deterministic order — but
        // index order also makes any non-queue side effects reproducible.
        for (src, outbox) in outboxes.iter_mut().enumerate() {
            for (dst, msg) in outbox.drain(..) {
                let at = W::stamp(&msg);
                assert!(
                    at >= end,
                    "lookahead violation: shard {src} emitted a message for \
                     shard {dst} stamped {at:?}, before window end {end:?}"
                );
                assert!(dst < k, "shard {src} addressed out-of-range shard {dst}");
                shards[dst].deliver(msg);
                report.exchanged += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::CalendarQueue;

    /// A minimal token-passing world: each shard holds counters that ping
    /// a fixed partner (possibly on another shard) with a constant
    /// latency, recording every (time, token) it processes.
    struct PingShard {
        index: usize,
        shards: usize,
        queue: CalendarQueue<Ping>,
        log: Vec<(u64, u64)>,
        latency_ns: u64,
        /// Highest token that still forwards (content-based termination,
        /// so total hops are independent of how the ring is sharded).
        max_token: u64,
    }

    #[derive(Debug)]
    struct Ping {
        at: SimTime,
        token: u64,
    }

    impl ShardWorld for PingShard {
        type Msg = Ping;

        fn next_at(&self) -> Option<SimTime> {
            self.queue.next_at()
        }

        fn run_window(&mut self, end: SimTime, outbox: &mut Vec<(usize, Ping)>) {
            while let Some((at, ping)) = self.queue.pop_before(end) {
                self.log.push((at.as_nanos(), ping.token));
                if ping.token >= self.max_token {
                    continue;
                }
                let next = Ping {
                    at: SimTime::from_nanos(at.as_nanos() + self.latency_ns),
                    token: ping.token + 1,
                };
                let dst = (self.index + 1) % self.shards;
                if dst == self.index {
                    let key = next.token;
                    self.queue.push_keyed(next.at, key, next);
                } else {
                    outbox.push((dst, next));
                }
            }
        }

        fn deliver(&mut self, msg: Ping) {
            let key = msg.token;
            self.queue.push_keyed(msg.at, key, msg);
        }

        fn stamp(msg: &Ping) -> SimTime {
            msg.at
        }
    }

    fn ring(k: usize, latency_ns: u64, hops: u64) -> Vec<PingShard> {
        let mut shards: Vec<PingShard> = (0..k)
            .map(|index| PingShard {
                index,
                shards: k,
                queue: CalendarQueue::new(),
                log: Vec::new(),
                latency_ns,
                max_token: hops,
            })
            .collect();
        shards[0].deliver(Ping {
            at: SimTime::from_nanos(latency_ns),
            token: 0,
        });
        shards
    }

    /// Flattens per-shard logs into global event order `(at, token)`.
    fn full_log(shards: &[PingShard]) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = shards.iter().flat_map(|s| s.log.iter().copied()).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn k1_reduces_to_the_serial_loop() {
        let mut serial = ring(1, 1_000, 50);
        let rep = run_sharded(
            &mut serial,
            Duration::from_nanos(1_000),
            SimTime::from_secs(1),
            ShardMode::Auto,
        );
        assert_eq!(rep.mode, "inline", "one shard never spawns threads");
        assert_eq!(rep.shards, 1);
        assert_eq!(rep.exchanged, 0, "K=1 has no cross-shard traffic");
        assert_eq!(serial[0].log.len(), 51, "seed ping + 50 hops");
    }

    #[test]
    fn logs_identical_across_shard_counts_and_modes() {
        let reference = {
            let mut s = ring(1, 1_000, 64);
            run_sharded(
                &mut s,
                Duration::from_nanos(1_000),
                SimTime::from_secs(1),
                ShardMode::Inline,
            );
            full_log(&s)
        };
        for k in [2usize, 4, 8] {
            for mode in [ShardMode::Inline, ShardMode::Threaded] {
                let mut s = ring(k, 1_000, 64);
                let rep = run_sharded(
                    &mut s,
                    Duration::from_nanos(1_000),
                    SimTime::from_secs(1),
                    mode,
                );
                let got = full_log(&s);
                assert_eq!(got, reference, "k={k} mode={mode:?}");
                assert!(rep.exchanged > 0, "ring traffic crosses shards");
            }
        }
    }

    #[test]
    fn deadline_is_inclusive_and_later_events_stay_queued() {
        let mut shards = ring(2, 1_000, 10);
        // Hops land at 1000, 2000, …; deadline 3000 must process exactly
        // the pings stamped 1000..=3000.
        run_sharded(
            &mut shards,
            Duration::from_nanos(1_000),
            SimTime::from_nanos(3_000),
            ShardMode::Inline,
        );
        let processed = full_log(&shards);
        assert_eq!(
            processed.iter().map(|&(at, _)| at).collect::<Vec<_>>(),
            vec![1_000, 2_000, 3_000]
        );
        let pending: usize = shards.iter().map(|s| s.queue.len()).sum();
        assert_eq!(pending, 1, "the 4000 ns ping is still queued");
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn lying_about_lookahead_is_caught_at_the_barrier() {
        // Claim a 5000 ns lookahead while links are 1000 ns: the first
        // cross-shard ping lands inside the window that produced it.
        let mut shards = ring(2, 1_000, 4);
        run_sharded(
            &mut shards,
            Duration::from_nanos(5_000),
            SimTime::from_secs(1),
            ShardMode::Inline,
        );
    }
}

//! Per-node resource accounting, mirroring the Docker Engine stats API.
//!
//! The PDN analyzer of the paper monitors each peer container's CPU usage,
//! memory, and network I/O per second (§IV-A "Monitoring PDN activities");
//! Figure 4, Figure 5 and Table VI are all built from those series.
//! [`ResourceModel`] reproduces that: application layers *charge* CPU
//! microseconds and memory bytes for the work they simulate, the network
//! layer records bytes on the wire, and [`ResourceModel::sample`] produces
//! the per-second time series the monitor would have captured.

use std::time::Duration;

use crate::time::SimTime;

/// One per-second sample of a node's resources (a `docker stats` row).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceSample {
    /// Sample time.
    pub at: SimTime,
    /// CPU utilisation in the sampling window, as a fraction of one core
    /// (1.0 = 100%).
    pub cpu: f64,
    /// Resident memory in bytes at sample time.
    pub mem_bytes: u64,
    /// Bytes received since the previous sample.
    pub rx_bytes: u64,
    /// Bytes transmitted since the previous sample.
    pub tx_bytes: u64,
}

/// Cumulative resource counters plus the sampled series for one node.
#[derive(Debug, Clone, Default)]
pub struct ResourceModel {
    cpu_busy: Duration,
    mem_bytes: u64,
    total_rx: u64,
    total_tx: u64,
    // Values at the previous sample, to produce deltas.
    last_cpu_busy: Duration,
    last_rx: u64,
    last_tx: u64,
    last_sample_at: SimTime,
    series: Vec<ResourceSample>,
}

impl ResourceModel {
    /// Creates a zeroed model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `busy` CPU time (e.g. for decrypting a segment).
    pub fn charge_cpu(&mut self, busy: Duration) {
        self.cpu_busy += busy;
    }

    /// Allocates `bytes` of resident memory.
    pub fn alloc_mem(&mut self, bytes: u64) {
        self.mem_bytes += bytes;
    }

    /// Releases `bytes` of resident memory (saturating).
    pub fn free_mem(&mut self, bytes: u64) {
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
    }

    /// Records `bytes` received on the wire.
    pub fn record_rx(&mut self, bytes: u64) {
        self.total_rx += bytes;
    }

    /// Records `bytes` transmitted on the wire.
    pub fn record_tx(&mut self, bytes: u64) {
        self.total_tx += bytes;
    }

    /// Current resident memory.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Total bytes received since creation.
    pub fn total_rx(&self) -> u64 {
        self.total_rx
    }

    /// Total bytes transmitted since creation.
    pub fn total_tx(&self) -> u64 {
        self.total_tx
    }

    /// Total CPU busy time since creation.
    pub fn cpu_busy(&self) -> Duration {
        self.cpu_busy
    }

    /// Takes a per-second style sample at `now`, appending to the series.
    ///
    /// CPU is reported as busy-time divided by wall-time since the previous
    /// sample. Samples taken at identical or regressing times report zero
    /// utilisation rather than dividing by zero.
    pub fn sample(&mut self, now: SimTime) {
        let window = now.saturating_since(self.last_sample_at);
        let busy = self.cpu_busy.saturating_sub(self.last_cpu_busy);
        let cpu = if window.is_zero() {
            0.0
        } else {
            busy.as_secs_f64() / window.as_secs_f64()
        };
        self.series.push(ResourceSample {
            at: now,
            cpu,
            mem_bytes: self.mem_bytes,
            rx_bytes: self.total_rx - self.last_rx,
            tx_bytes: self.total_tx - self.last_tx,
        });
        self.last_sample_at = now;
        self.last_cpu_busy = self.cpu_busy;
        self.last_rx = self.total_rx;
        self.last_tx = self.total_tx;
    }

    /// The sampled series so far.
    pub fn series(&self) -> &[ResourceSample] {
        &self.series
    }

    /// Summary statistics over the sampled series.
    pub fn summary(&self) -> ResourceSummary {
        ResourceSummary::from_samples(&self.series)
    }
}

/// Renders a sampled series as CSV (`t_secs,cpu,mem_bytes,rx_bytes,tx_bytes`)
/// for external plotting of the Figure 4 curves.
pub fn series_to_csv(samples: &[ResourceSample]) -> String {
    let mut out = String::from("t_secs,cpu,mem_bytes,rx_bytes,tx_bytes\n");
    for s in samples {
        out.push_str(&format!(
            "{},{:.4},{},{},{}\n",
            s.at.as_millis() as f64 / 1000.0,
            s.cpu,
            s.mem_bytes,
            s.rx_bytes,
            s.tx_bytes
        ));
    }
    out
}

/// Aggregate statistics over a sampled series.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ResourceSummary {
    /// Mean CPU utilisation across samples.
    pub mean_cpu: f64,
    /// Peak CPU utilisation.
    pub peak_cpu: f64,
    /// Mean resident memory in bytes.
    pub mean_mem_bytes: f64,
    /// Total received bytes across the series.
    pub total_rx: u64,
    /// Total transmitted bytes across the series.
    pub total_tx: u64,
    /// Number of samples.
    pub samples: usize,
}

impl ResourceSummary {
    /// Computes a summary from raw samples.
    pub fn from_samples(samples: &[ResourceSample]) -> Self {
        if samples.is_empty() {
            return ResourceSummary::default();
        }
        let n = samples.len() as f64;
        ResourceSummary {
            mean_cpu: samples.iter().map(|s| s.cpu).sum::<f64>() / n,
            peak_cpu: samples.iter().map(|s| s.cpu).fold(0.0, f64::max),
            mean_mem_bytes: samples.iter().map(|s| s.mem_bytes as f64).sum::<f64>() / n,
            total_rx: samples.iter().map(|s| s.rx_bytes).sum(),
            total_tx: samples.iter().map(|s| s.tx_bytes).sum(),
            samples: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_fraction_over_window() {
        let mut m = ResourceModel::new();
        m.charge_cpu(Duration::from_millis(150));
        m.sample(SimTime::from_secs(1));
        assert!((m.series()[0].cpu - 0.15).abs() < 1e-9);
        // Next window has no work.
        m.sample(SimTime::from_secs(2));
        assert_eq!(m.series()[1].cpu, 0.0);
    }

    #[test]
    fn io_deltas_per_window() {
        let mut m = ResourceModel::new();
        m.record_rx(1000);
        m.record_tx(200);
        m.sample(SimTime::from_secs(1));
        m.record_rx(50);
        m.sample(SimTime::from_secs(2));
        assert_eq!(m.series()[0].rx_bytes, 1000);
        assert_eq!(m.series()[0].tx_bytes, 200);
        assert_eq!(m.series()[1].rx_bytes, 50);
        assert_eq!(m.series()[1].tx_bytes, 0);
        assert_eq!(m.total_rx(), 1050);
    }

    #[test]
    fn memory_tracks_alloc_free() {
        let mut m = ResourceModel::new();
        m.alloc_mem(10_000);
        m.free_mem(4_000);
        assert_eq!(m.mem_bytes(), 6_000);
        m.free_mem(100_000); // saturates, never underflows
        assert_eq!(m.mem_bytes(), 0);
    }

    #[test]
    fn zero_width_window_reports_zero_cpu() {
        let mut m = ResourceModel::new();
        m.charge_cpu(Duration::from_millis(10));
        m.sample(SimTime::ZERO);
        assert_eq!(m.series()[0].cpu, 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let mut m = ResourceModel::new();
        m.alloc_mem(100);
        m.charge_cpu(Duration::from_millis(500));
        m.record_tx(10);
        m.sample(SimTime::from_secs(1));
        m.charge_cpu(Duration::from_millis(100));
        m.record_rx(20);
        m.sample(SimTime::from_secs(2));
        let s = m.summary();
        assert_eq!(s.samples, 2);
        assert!((s.mean_cpu - 0.3).abs() < 1e-9);
        assert!((s.peak_cpu - 0.5).abs() < 1e-9);
        assert_eq!(s.total_tx, 10);
        assert_eq!(s.total_rx, 20);
        assert_eq!(s.mean_mem_bytes, 100.0);
    }

    #[test]
    fn csv_rendering() {
        let mut m = ResourceModel::new();
        m.alloc_mem(5);
        m.record_tx(7);
        m.sample(SimTime::from_secs(1));
        let csv = series_to_csv(m.series());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t_secs,cpu,mem_bytes,rx_bytes,tx_bytes"));
        assert_eq!(lines.next(), Some("1,0.0000,5,0,7"));
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = ResourceSummary::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean_cpu, 0.0);
    }
}

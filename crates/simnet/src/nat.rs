//! Network address translation boxes.
//!
//! PDN peers sit behind residential NATs, and the STUN/ICE machinery of the
//! WebRTC substrate exists precisely to traverse them. The four classic NAT
//! behaviours are modeled; the paper's bogon observations (§IV-D) arise when
//! traversal errors surface private/CGNAT candidates to remote peers.

use std::collections::HashMap;

use crate::addr::Addr;

/// The classic NAT behaviour taxonomy (RFC 3489 terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NatKind {
    /// Endpoint-independent mapping and filtering: anyone may send to the
    /// mapped address once it exists.
    FullCone,
    /// Endpoint-independent mapping, address-dependent filtering.
    RestrictedCone,
    /// Endpoint-independent mapping, address-and-port-dependent filtering.
    PortRestrictedCone,
    /// Address-and-port-dependent mapping: a new public port per remote
    /// endpoint. Direct hole punching between two of these fails.
    Symmetric,
}

impl NatKind {
    /// Whether hole punching between two NATs of these kinds can succeed
    /// without a relay.
    pub fn traversal_possible(self, other: NatKind) -> bool {
        // Symmetric<->Symmetric and Symmetric<->PortRestrictedCone fail:
        // the symmetric side's mapping toward the STUN server differs from
        // its mapping toward the peer, so the predicted candidate is wrong
        // and a port-restricted filter drops the unexpected source.
        !matches!(
            (self, other),
            (NatKind::Symmetric, NatKind::Symmetric)
                | (NatKind::Symmetric, NatKind::PortRestrictedCone)
                | (NatKind::PortRestrictedCone, NatKind::Symmetric)
        )
    }
}

/// Key identifying a mapping on the private side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MapKey {
    internal: Addr,
    /// For symmetric NATs, the remote endpoint; unused otherwise.
    remote: Option<Addr>,
}

/// A stateful NAT box translating between a private realm and one public IP.
#[derive(Debug)]
pub struct Nat {
    kind: NatKind,
    public_ip: std::net::Ipv4Addr,
    next_port: u16,
    outbound: HashMap<MapKey, u16>,
    /// public port -> internal address owning the mapping
    inbound: HashMap<u16, Addr>,
    /// (public port, remote) pairs the internal host has contacted,
    /// for filtering decisions.
    contacted: HashMap<u16, Vec<Addr>>,
}

impl Nat {
    /// Creates a NAT of the given behaviour owning `public_ip`.
    pub fn new(kind: NatKind, public_ip: std::net::Ipv4Addr) -> Self {
        Nat {
            kind,
            public_ip,
            next_port: 40_000,
            outbound: HashMap::new(),
            inbound: HashMap::new(),
            contacted: HashMap::new(),
        }
    }

    /// The NAT's behaviour.
    pub fn kind(&self) -> NatKind {
        self.kind
    }

    /// The NAT's public IP.
    pub fn public_ip(&self) -> std::net::Ipv4Addr {
        self.public_ip
    }

    /// Translates an outbound packet from `internal` toward `remote`,
    /// creating a mapping if needed. Returns the public source address.
    pub fn egress(&mut self, internal: Addr, remote: Addr) -> Addr {
        let key = match self.kind {
            NatKind::Symmetric => MapKey {
                internal,
                remote: Some(remote),
            },
            _ => MapKey {
                internal,
                remote: None,
            },
        };
        let port = match self.outbound.get(&key) {
            Some(&p) => p,
            None => {
                let p = self.next_port;
                self.next_port = self.next_port.wrapping_add(1).max(40_000);
                self.outbound.insert(key, p);
                self.inbound.insert(p, internal);
                p
            }
        };
        self.contacted.entry(port).or_default().push(remote);
        Addr::from_ip(self.public_ip, port)
    }

    /// Translates an inbound packet addressed to public `port` from `remote`.
    ///
    /// Returns the internal destination if the NAT's filtering policy admits
    /// the packet, `None` if it is dropped.
    pub fn ingress(&self, port: u16, remote: Addr) -> Option<Addr> {
        let internal = *self.inbound.get(&port)?;
        let contacted = self.contacted.get(&port);
        let admitted = match self.kind {
            NatKind::FullCone => true,
            NatKind::RestrictedCone => contacted
                .map(|v| v.iter().any(|a| a.ip == remote.ip))
                .unwrap_or(false),
            NatKind::PortRestrictedCone | NatKind::Symmetric => {
                contacted.map(|v| v.contains(&remote)).unwrap_or(false)
            }
        };
        admitted.then_some(internal)
    }

    /// Number of active public-port mappings.
    pub fn mapping_count(&self) -> usize {
        self.inbound.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(d: u8, port: u16) -> Addr {
        Addr::new(9, 9, 9, d, port)
    }

    fn internal(port: u16) -> Addr {
        Addr::new(192, 168, 1, 10, port)
    }

    #[test]
    fn full_cone_reuses_mapping_and_admits_anyone() {
        let mut nat = Nat::new(NatKind::FullCone, Ipv4Addr::new(5, 5, 5, 5));
        let pub1 = nat.egress(internal(1000), addr(1, 80));
        let pub2 = nat.egress(internal(1000), addr(2, 80));
        assert_eq!(pub1, pub2, "endpoint-independent mapping");
        // A third party that was never contacted may reach the mapping.
        assert_eq!(nat.ingress(pub1.port, addr(3, 9)), Some(internal(1000)));
    }

    #[test]
    fn restricted_cone_filters_by_ip() {
        let mut nat = Nat::new(NatKind::RestrictedCone, Ipv4Addr::new(5, 5, 5, 5));
        let p = nat.egress(internal(1000), addr(1, 80));
        // Same IP, different port: admitted.
        assert!(nat.ingress(p.port, addr(1, 9999)).is_some());
        // Different IP: dropped.
        assert!(nat.ingress(p.port, addr(2, 80)).is_none());
    }

    #[test]
    fn port_restricted_cone_filters_by_ip_and_port() {
        let mut nat = Nat::new(NatKind::PortRestrictedCone, Ipv4Addr::new(5, 5, 5, 5));
        let p = nat.egress(internal(1000), addr(1, 80));
        assert!(nat.ingress(p.port, addr(1, 80)).is_some());
        assert!(nat.ingress(p.port, addr(1, 81)).is_none());
    }

    #[test]
    fn symmetric_mapping_differs_per_remote() {
        let mut nat = Nat::new(NatKind::Symmetric, Ipv4Addr::new(5, 5, 5, 5));
        let p1 = nat.egress(internal(1000), addr(1, 80));
        let p2 = nat.egress(internal(1000), addr(2, 80));
        assert_ne!(p1.port, p2.port, "address-dependent mapping");
        // Each mapping only admits its own remote.
        assert!(nat.ingress(p1.port, addr(1, 80)).is_some());
        assert!(nat.ingress(p1.port, addr(2, 80)).is_none());
    }

    #[test]
    fn unknown_port_dropped() {
        let nat = Nat::new(NatKind::FullCone, Ipv4Addr::new(5, 5, 5, 5));
        assert!(nat.ingress(12345, addr(1, 80)).is_none());
    }

    #[test]
    fn traversal_matrix() {
        use NatKind::*;
        assert!(FullCone.traversal_possible(Symmetric));
        assert!(RestrictedCone.traversal_possible(Symmetric));
        assert!(!Symmetric.traversal_possible(Symmetric));
        assert!(!Symmetric.traversal_possible(PortRestrictedCone));
        assert!(!PortRestrictedCone.traversal_possible(Symmetric));
        assert!(PortRestrictedCone.traversal_possible(PortRestrictedCone));
    }

    #[test]
    fn distinct_internal_hosts_get_distinct_ports() {
        let mut nat = Nat::new(NatKind::FullCone, Ipv4Addr::new(5, 5, 5, 5));
        let p1 = nat.egress(Addr::new(192, 168, 1, 10, 1000), addr(1, 80));
        let p2 = nat.egress(Addr::new(192, 168, 1, 11, 1000), addr(1, 80));
        assert_ne!(p1.port, p2.port);
        assert_eq!(nat.mapping_count(), 2);
    }
}

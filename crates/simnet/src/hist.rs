//! Allocation-free log-bucketed latency histogram (HDR-style).
//!
//! The service-mode harness records millions of join-to-first-segment and
//! signaling-RTT samples per run; sorting raw samples for quantiles would
//! dominate the measurement. [`LatencyHistogram`] instead buckets values
//! log-linearly — exact below [`SUB_BUCKETS`], then 32 linear sub-buckets
//! per octave — so recording is pure index arithmetic into one fixed
//! array allocated at construction (nothing allocates afterwards), counts
//! are exact integers (deterministic across runs and platforms), and two
//! histograms from different worlds merge by elementwise addition.
//!
//! Quantile queries return the *upper bound* of the bucket holding the
//! requested rank, so reported quantiles never understate the true value
//! and overstate it by at most one sub-bucket width: a relative error of
//! `1/32` (~3.1%) for any value ≥ 32.

/// Sub-bucket resolution bits per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave; values below this are recorded exactly.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Number of octaves above the exact range (u64 values up to 2^63).
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count.
const BUCKETS: usize = (OCTAVES + 1) * SUB_BUCKETS as usize;

/// Maximum relative overshoot of a quantile query: one part in
/// [`SUB_BUCKETS`].
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Bucket index of `v`. Exact for `v < SUB_BUCKETS`; log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let shift = msb - SUB_BITS;
    octave * SUB_BUCKETS as usize + ((v >> shift) as usize & (SUB_BUCKETS as usize - 1))
}

/// Largest value mapping to bucket `idx` (the quantile upper bound).
#[inline]
fn bucket_high(idx: usize) -> u64 {
    let sub = (idx as u64) & (SUB_BUCKETS - 1);
    let octave = (idx as u64) >> SUB_BITS;
    if octave == 0 {
        return sub;
    }
    let shift = (octave - 1) as u32;
    ((SUB_BUCKETS + sub) << shift) + ((1u64 << shift) - 1)
}

/// A fixed-size log-bucketed histogram of `u64` samples (latency in
/// nanoseconds, by convention). See the [module docs](self).
///
/// # Examples
///
/// ```
/// use pdn_simnet::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [5u64, 7, 9, 500] {
///     h.record(ms * 1_000_000);
/// }
/// assert_eq!(h.count(), 4);
/// // p50 lands in the bucket holding 7 ms, within 3.2% above it.
/// let p50 = h.quantile(0.50);
/// assert!(p50 >= 7_000_000 && p50 <= 7_250_000);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram. This is the only allocating call; the
    /// bucket array is fixed for the histogram's lifetime.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("BUCKETS-length slice"),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples. Never allocates.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128 * n as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the sample of rank `ceil(q · count)`, clamped to
    /// the observed maximum. At most [`RELATIVE_ERROR`] above the true
    /// rank value; never below it. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`. Exactly equivalent to
    /// having recorded both sample streams into one histogram. Never
    /// allocates.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Resets the histogram to empty without releasing the bucket array.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_below_sub_buckets() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS {
            let q = (v + 1) as f64 / SUB_BUCKETS as f64;
            assert_eq!(h.quantile(q), v, "small values are exact");
        }
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let high = bucket_high(idx);
            assert!(high >= v, "v={v} idx={idx} high={high}");
            // The upper bound overshoots by at most 1/32 relative.
            assert!(
                (high - v) as f64 <= v as f64 * RELATIVE_ERROR + 1.0,
                "v={v} high={high}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(1234);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(1.0), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Monotone: bucket index and upper bound are non-decreasing in v.
        #[test]
        fn index_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
            prop_assert!(bucket_high(bucket_index(lo)) <= bucket_high(bucket_index(hi)));
        }

        /// Every quantile is within the documented error bound of the true
        /// rank statistic computed from the sorted raw samples.
        #[test]
        fn quantile_within_bucket_error(
            samples in proptest::collection::vec(0u64..1_000_000_000_000, 1..400),
            q_milli in 0u32..=1000,
        ) {
            let q = q_milli as f64 / 1000.0;
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut samples = samples;
            samples.sort_unstable();
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let got = h.quantile(q);
            prop_assert!(got >= truth, "quantile understated: got {got} < true {truth}");
            prop_assert!(
                got as f64 <= truth as f64 * (1.0 + RELATIVE_ERROR) + 1.0,
                "quantile overshot the error bound: got {got}, true {truth}"
            );
        }

        /// merge(a, b) is indistinguishable from recording a ∪ b.
        #[test]
        fn merge_equals_union(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            ys in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let mut a = LatencyHistogram::new();
            let mut b = LatencyHistogram::new();
            let mut union = LatencyHistogram::new();
            for &x in &xs {
                a.record(x);
                union.record(x);
            }
            for &y in &ys {
                b.record(y);
                union.record(y);
            }
            a.merge(&b);
            prop_assert_eq!(a.count(), union.count());
            prop_assert_eq!(a.min(), union.min());
            prop_assert_eq!(a.max(), union.max());
            prop_assert_eq!(&a.counts[..], &union.counts[..]);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(a.quantile(q), union.quantile(q));
            }
        }
    }
}

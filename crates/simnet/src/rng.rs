//! Deterministic randomness for simulations.
//!
//! Every source of randomness in the framework flows through [`SimRng`],
//! seeded explicitly, so that all experiments (and all paper tables) are
//! reproducible.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded deterministic random number generator.
///
/// # Examples
///
/// ```
/// use pdn_simnet::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(rand::rngs::StdRng);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng(rand::rngs::StdRng::seed_from_u64(seed))
    }

    /// Derives an independent child generator labeled by `stream`.
    ///
    /// Two children with different labels produce uncorrelated streams; the
    /// same label always yields the same child. Useful to give each node or
    /// experiment phase its own stream without global ordering effects.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.0.gen::<u64>();
        SimRng::seed(base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `range`.
    pub fn range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.0.gen_bool(p)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        items.choose(&mut self.0)
    }

    /// Picks an index according to non-negative `weights`.
    ///
    /// Returns `None` if `weights` is empty or sums to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.0);
    }

    /// Samples `k` distinct indices out of `0..n` (all if `k >= n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for inter-arrival times (viewer churn, request arrivals).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // avoid ln(0)
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_stable_and_distinct() {
        let mut root1 = SimRng::seed(1);
        let mut root2 = SimRng::seed(1);
        let mut c1 = root1.fork(5);
        let mut c2 = root2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut root3 = SimRng::seed(1);
        let mut other = root3.fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn choose_weighted_respects_zeros() {
        let mut r = SimRng::seed(9);
        for _ in 0..200 {
            let i = r.choose_weighted(&[0.0, 3.0, 0.0]).unwrap();
            assert_eq!(i, 1);
        }
        assert_eq!(r.choose_weighted(&[]), None);
        assert_eq!(r.choose_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::seed(3);
        let s = r.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn exp_is_positive_with_roughly_right_mean() {
        let mut r = SimRng::seed(11);
        let n = 5000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(observed > 3.5 && observed < 4.5, "observed mean {observed}");
    }
}

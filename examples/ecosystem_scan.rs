//! Ecosystem scan: run the §III detection pipeline end to end and print
//! Tables I–IV.
//!
//! ```sh
//! cargo run --example ecosystem_scan
//! ```

use pdn_detector::{corpus, tables, DetectionReport};
use pdn_simnet::SimRng;

fn main() {
    let mut rng = SimRng::seed(2024);
    println!("generating synthetic ecosystem (Tranco+Androzoo stand-in)…");
    let eco = corpus::generate(corpus::CorpusConfig::default(), &mut rng);
    println!(
        "  {} websites, {} apps\n",
        eco.websites.len(),
        eco.apps.len()
    );

    println!("running static scan + dynamic confirmation (US + CN vantages)…\n");
    let report = tables::run_pipeline(&eco, &mut rng);

    println!("{}", report.render_table1());
    println!(
        "{}",
        DetectionReport::render_confirmed(&report.table2, "TABLE II: Confirmed PDN websites")
    );
    println!(
        "{}",
        DetectionReport::render_confirmed(&report.table3, "TABLE III: Confirmed PDN apps")
    );
    println!("{}", report.render_table4());

    let t = &report.triage;
    println!(
        "private-PDN triage: {} generic WebRTC matches, {} in top-10K → \
         {} private PDNs, {} TURN-relayed, {} tracking, {} untriggered",
        t.generic_matches,
        t.top10k_candidates,
        t.confirmed_private,
        t.turn_relayed,
        t.tracking,
        t.untriggered
    );
    println!(
        "extracted {} API keys for the §IV-B field study",
        report.keys.len()
    );
}

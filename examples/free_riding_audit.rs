//! The §IV-B free-riding audit: per-provider peer-authentication tests,
//! the extracted-key field study, and the billing consequence, plus the
//! §V-A disposable-token defense.
//!
//! ```sh
//! cargo run --example free_riding_audit
//! ```

use pdn_core::freeriding;
use pdn_detector::{corpus, tables};
use pdn_provider::ProviderProfile;
use pdn_simnet::SimRng;

fn main() {
    println!("== peer authentication tests (cross-domain / domain-spoofing) ==\n");
    for profile in [
        ProviderProfile::peer5(),
        ProviderProfile::streamroot(),
        ProviderProfile::viblast(),
    ] {
        let r = freeriding::evaluate_provider(&profile, 42);
        println!(
            "{:<12} cross-domain: {:<10?} spoofing: {:<10?} attacker P2P {} KB → victim bill ${:.6}",
            r.provider, r.cross_domain, r.domain_spoofing, r.attacker_p2p_bytes / 1000, r.victim_bill_usd
        );
    }

    println!("\n== §IV-B field study over extracted keys ==\n");
    let mut rng = SimRng::seed(9);
    let eco = corpus::generate(corpus::CorpusConfig::default(), &mut rng);
    let report = tables::run_pipeline(&eco, &mut rng);
    let study = freeriding::key_field_study(&eco, &report.keys);
    println!(
        "extracted {} keys: {} valid, {} expired; {} cross-domain vulnerable, {} spoofable",
        study.tested,
        study.valid,
        study.expired,
        study.cross_domain_vulnerable,
        study.spoof_vulnerable
    );

    println!("\n== §V-A disposable video-binding token defense ==\n");
    let eval = pdn_core::defense::token::evaluate(100);
    println!(
        "legit flow: {}   cross-video: {}   replay: {}   ttl: {}   token size: {} bytes",
        ok(eval.legit_flow_works),
        ok(eval.cross_video_rejected),
        ok(eval.replay_rejected),
        ok(eval.expired_rejected),
        eval.token_bytes
    );
    println!(
        "defense holds: {}",
        if eval.defense_holds() { "YES" } else { "NO" }
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "pass"
    } else {
        "FAIL"
    }
}

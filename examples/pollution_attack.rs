//! The §IV-C content pollution attacks, with and without the §V-B defense.
//!
//! ```sh
//! cargo run --example pollution_attack
//! ```

use pdn_core::pollution::{run_pollution, PollutionMode};
use pdn_provider::{AuthScheme, ProviderProfile};

fn report(label: &str, r: &pdn_core::PollutionResult) {
    println!(
        "{label:<34} {:<9} polluted played {:>2}/{:<2}  isolated={} rejections={} blacklisted={}",
        if r.attack_succeeded() {
            "SUCCESS"
        } else {
            "blocked"
        },
        r.victim_polluted_played,
        r.victim_total_played,
        r.attacker_isolated,
        r.victim_rejections,
        r.attacker_blacklisted,
    );
}

fn main() {
    println!("content pollution attacks against a Peer5-like provider\n");
    let profile = ProviderProfile::peer5();
    let slow_start = profile.slow_start_segments;

    println!("1. direct content pollution (manifest + every segment):");
    let r = run_pollution(&profile, PollutionMode::Direct, 2, 1);
    report("   direct", &r);
    println!("   → the doctored manifest lands the attacker in its own swarm\n");

    println!("2. video segment pollution (manifest + slow start intact):");
    let r = run_pollution(&profile, PollutionMode::FromSeq(slow_start), 2, 2);
    report("   segment", &r);
    println!("   → victims play polluted segments served by the controlled peer\n");

    println!("3. same attack against the §V-B peer-assisted integrity checking:");
    let mut hardened = ProviderProfile::hardened(&profile);
    hardened.auth = AuthScheme::StaticApiKey;
    let r = run_pollution(&hardened, PollutionMode::FromSeq(slow_start), 2, 3);
    report("   segment vs defense", &r);
    println!("   → SIM verification rejects the polluted bytes; the liar is expelled");
}

//! Quickstart: build a PDN world, stream a video between two viewers, and
//! inspect what the provider, the CDN and the viewers each saw.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use pdn_media::VideoSource;
use pdn_provider::world::{PdnWorld, ViewerSpec};
use pdn_provider::{AgentConfig, CustomerAccount, ProviderProfile};
use pdn_simnet::SimTime;

fn main() {
    // A Peer5-like provider with one registered customer.
    let mut world = PdnWorld::new(ProviderProfile::peer5(), 7);
    world
        .server_mut()
        .accounts_mut()
        .register(CustomerAccount::new(
            "acme-video",
            "acme-api-key",
            ["acme.tv".to_string()],
        ));

    // A 2-minute VOD published on the CDN origin.
    world.publish_video(VideoSource::vod(
        "https://acme.tv/launch.m3u8",
        vec![1_000_000],
        Duration::from_secs(4),
        30,
    ));

    // Two viewers: the second joins late and leeches off the first.
    let mut cfg = AgentConfig::new("https://acme.tv/launch.m3u8", "acme-api-key", "acme.tv");
    cfg.vod_end = Some(30);
    let alice = world.spawn_viewer(ViewerSpec::residential(cfg.clone()));
    world.run_until(SimTime::from_secs(10));
    let bob = world.spawn_viewer(ViewerSpec::residential(cfg));
    world.run_until(SimTime::from_secs(150));

    for (name, node) in [("alice", alice), ("bob", bob)] {
        let agent = world.agent(node);
        let (up, down, cdn) = agent.traffic();
        println!(
            "{name}: played {} segments, {} stalls, offload {:.0}%  (p2p up {} KB, p2p down {} KB, cdn {} KB)",
            agent.player().played().len(),
            agent.player().stalls().len(),
            agent.player().p2p_offload_ratio() * 100.0,
            up / 1000,
            down / 1000,
            cdn / 1000,
        );
    }

    let meter = world.server().meter("acme-video");
    println!(
        "provider metered: {} joins, {} KB P2P traffic, {} viewer-seconds",
        meter.joins,
        meter.p2p_bytes / 1000,
        meter.viewer_seconds
    );
    let bill = world.cdn().bill();
    println!(
        "CDN served {} requests, {} MB egress, ${:.4}",
        bill.requests,
        bill.egress_bytes / 1_000_000,
        bill.cost_usd
    );
}

//! The §IV-D IP-leak field study: a controlled peer harvesting viewer IPs
//! from live channels for a simulated week, with the §V-C mitigations.
//!
//! ```sh
//! cargo run --release --example ip_leak_survey
//! ```

use pdn_core::ip_leak::{huya_population, rt_news_population, run_wild_trials, WildTrial};
use pdn_core::WorldPool;
use pdn_provider::MatchingPolicy;

fn print_result(r: &pdn_core::IpLeakWildResult) {
    println!(
        "{:<10} arrivals {:>6}  unique IPs {:>6}  public {:>6}  bogons {:>4} \
         (private {}, nat {}, reserved {})",
        r.name,
        r.arrivals,
        r.unique_ips,
        r.public_ips,
        r.bogons,
        r.bogon_private,
        r.bogon_cgnat,
        r.bogon_reserved
    );
    let mut top: Vec<(&String, &usize)> = r.countries.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    let head: Vec<String> = top
        .iter()
        .take(3)
        .map(|(c, n)| {
            format!(
                "{c} {:.0}%",
                **n as f64 / r.public_ips.max(1) as f64 * 100.0
            )
        })
        .collect();
    println!(
        "{:<10} countries {:>3} cities {:>4}   top: {}",
        "",
        r.countries.len(),
        r.cities,
        head.join(", ")
    );
}

fn main() {
    // All four harvests are independent worlds with fixed seeds; run them
    // across the WorldPool — the printed numbers are identical to the old
    // serial `run_wild` calls at any worker count.
    let trial = |spec, matching, seed| WildTrial {
        spec,
        matching,
        observer_country: "US".into(),
        days: 7.0,
        seed,
    };
    let trials = [
        trial(huya_population(), MatchingPolicy::Global, 1),
        trial(rt_news_population(), MatchingPolicy::Global, 2),
        trial(huya_population(), MatchingPolicy::SameCountry, 1),
        trial(rt_news_population(), MatchingPolicy::SameCountry, 2),
    ];
    let mut results = run_wild_trials(&trials, &WorldPool::auto());
    let rt_m = results.pop().expect("four trials");
    let huya_m = results.pop().expect("four trials");
    let rt = results.pop().expect("four trials");
    let huya = results.pop().expect("four trials");

    println!("== one-week harvest from a single controlled peer (US) ==\n");
    print_result(&huya);
    print_result(&rt);
    println!(
        "\ntotal unique IPs harvested: {}",
        huya.unique_ips + rt.unique_ips
    );

    println!("\n== §V-C mitigation: same-country peer matching ==\n");
    print_result(&huya_m);
    print_result(&rt_m);
    println!(
        "\nleak reduction: Huya {} → {}   RT News {} → {} ({}% of baseline)",
        huya.unique_ips,
        huya_m.unique_ips,
        rt.unique_ips,
        rt_m.unique_ips,
        (rt_m.unique_ips as f64 / rt.unique_ips.max(1) as f64 * 100.0) as u32
    );

    println!("\n== §V-C fundamental fix: TURN relaying (end-to-end world) ==\n");
    let (p2p, relayed, leaked) = pdn_core::defense::privacy::evaluate_relay_world(3);
    println!(
        "P2P bytes {} KB all via relay ({} KB relayed), real peer IPs leaked: {}",
        p2p / 1000,
        relayed / 1000,
        leaked
    );
}

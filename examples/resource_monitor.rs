//! The §IV-D resource-squatting experiments: Figure 4 (per-second CPU,
//! memory and network I/O of PDN peers vs a no-peer control) and Figure 5
//! (seeder upload vs neighbor count).
//!
//! ```sh
//! cargo run --release --example resource_monitor
//! ```

use pdn_core::squatting::{bandwidth_scaling, resource_consumption};
use pdn_provider::ProviderProfile;

fn main() {
    let profile = ProviderProfile::peer5();

    println!("== Figure 4: resource consumption of serving as a PDN peer ==\n");
    let fig = resource_consumption(&profile, 120, 1);
    println!(
        "{:<9} {:>8} {:>10} {:>10} {:>10}",
        "viewer", "cpu", "mem MB", "rx MB", "tx MB"
    );
    for m in [&fig.no_peer, &fig.peer_a, &fig.peer_b] {
        println!(
            "{:<9} {:>7.1}% {:>10.1} {:>10.1} {:>10.1}",
            m.label,
            m.summary.mean_cpu * 100.0,
            m.summary.mean_mem_bytes / 1e6,
            m.summary.total_rx as f64 / 1e6,
            m.summary.total_tx as f64 / 1e6,
        );
    }
    println!(
        "\nPDN overhead vs control: +{:.0}% CPU, +{:.0}% memory  (paper: +15% / +10%)",
        fig.cpu_overhead() * 100.0,
        fig.mem_overhead() * 100.0
    );

    // A glimpse of the per-second series the figure plots.
    println!("\nPeer B per-second samples (t=20..30s):");
    for s in fig
        .peer_b
        .series
        .iter()
        .filter(|s| (20..30).contains(&(s.at.as_millis() / 1000)))
    {
        println!(
            "  t={:>3}s cpu {:>5.1}% mem {:>6.1} MB rx {:>8} B/s tx {:>8} B/s",
            s.at.as_millis() / 1000,
            s.cpu * 100.0,
            s.mem_bytes as f64 / 1e6,
            s.rx_bytes,
            s.tx_bytes
        );
    }

    println!("\n== Figure 5: bandwidth of serving multiple peers ==\n");
    println!(
        "{:>9} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "neighbors", "upload MB", "download MB", "up/down", "stalls", "offload"
    );
    for p in bandwidth_scaling(&profile, 5, 90, 2) {
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>8.2}x {:>8} {:>7.0}%",
            p.neighbors,
            p.seeder_tx as f64 / 1e6,
            p.seeder_rx as f64 / 1e6,
            p.upload_ratio(),
            p.leech_stalls,
            p.leech_offload * 100.0
        );
    }
    println!(
        "\n(the paper: upload reaches ~200% of download at 3 peers; QoS degrades past the uplink)"
    );
}
